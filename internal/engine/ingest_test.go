package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/wal"
)

// tableSummaryState is one table's complete derived state: everything
// the net-delta machinery is allowed to defer and must eventually make
// identical to eager maintenance.
type tableSummaryState struct {
	ColAttachedAnns int
	Stats           map[string]string
	Summaries       map[int64]map[string][]model.Rep
	SummaryIdx      []string
	BaselineIdx     map[int64]string
}

// summaryState deep-dumps the derived state of every table — summary
// objects, per-instance statistics, column-attachment counters, and both
// index schemes' contents — after forcing any pending net deltas out.
// Two databases that ran equivalent workloads must produce DeepEqual
// dumps regardless of maintenance mode.
func summaryState(t *testing.T, db *DB) map[string]*tableSummaryState {
	t.Helper()
	db.FlushIngest()
	out := map[string]*tableSummaryState{}
	for _, name := range db.cat.TableNames() {
		tbl, err := db.cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		ts := &tableSummaryState{
			ColAttachedAnns: tbl.ColAttachedAnns,
			Stats:           map[string]string{},
			Summaries:       map[int64]map[string][]model.Rep{},
			BaselineIdx:     map[int64]string{},
		}
		var oids []int64
		tbl.Scan(func(_ heap.RID, tuple *model.Tuple) bool {
			oids = append(oids, tuple.OID)
			return true
		})
		for _, si := range tbl.Instances {
			ts.Stats[si.Name] = tbl.Stats(si.Name).String()
			if idx := db.SummaryIndex(name, si.Name); idx != nil {
				idx.Tree().ScanAll(func(k string, v int64) bool {
					ts.SummaryIdx = append(ts.SummaryIdx, fmt.Sprintf("%s@%d", k, v))
					return true
				})
			}
			if bIdx := db.BaselineIndex(name, si.Name); bIdx != nil {
				for _, oid := range oids {
					if obj, ok := bIdx.ReconstructObject(oid); ok {
						s := ""
						for _, r := range obj.Reps {
							s += fmt.Sprintf("%s=%d;", r.Label, r.Count)
						}
						ts.BaselineIdx[oid] = s
					}
				}
			}
		}
		for _, oid := range oids {
			m := map[string][]model.Rep{}
			for _, obj := range tbl.GetSummaries(oid) {
				m[obj.InstanceID] = obj.Reps
			}
			ts.Summaries[oid] = m
		}
		out[name] = ts
	}
	return out
}

// ingestWorkload drives a mixed annotation lifecycle — bulk ingest,
// multi-tuple attachments, a transaction, deletes of shared annotations,
// a tuple delete, index builds, and a buffered tail — under the given
// engine configuration.
func ingestWorkload(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, oids := testDBWithConfig(t, 12, cfg)
	shared := mustAnnotate(t, db, oids[0], annText("Disease", 50))
	if err := db.AttachAnnotation("Birds", oids[1], shared.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Birds", oids[2], shared.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAnnotation("Birds", oids[3], annText("Other", 51), []string{"name"}, "tester"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.AddAnnotation("Birds", oids[4], annText("Anatomy", 52), nil, "txer"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("Birds",
		model.NewInt(100), model.NewText("Bird100"), model.NewText("Corvidae")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	victim := mustAnnotate(t, db, oids[5], annText("Behavior", 53))
	if err := db.DeleteAnnotation("Birds", victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteAnnotation("Birds", shared.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteTuple("Birds", oids[11]); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	// A tail that stays buffered in batched mode until the comparison
	// forces it out.
	for i := 0; i < 4; i++ {
		mustAnnotate(t, db, oids[i], annText("Disease", 60+i))
	}
	return db
}

// The core tentpole contract: batched net-delta maintenance converges to
// exactly the state eager maintenance builds — summary objects, stats,
// counters, both index schemes, and query results included.
func TestIngestEagerBatchedIdentity(t *testing.T) {
	eager := ingestWorkload(t, Config{PageCap: 16})
	batched := ingestWorkload(t, Config{PageCap: 16, IngestFlushOps: 5})

	if got, want := summaryState(t, batched), summaryState(t, eager); !reflect.DeepEqual(got, want) {
		t.Errorf("batched summary state diverges from eager:\n got: %+v\nwant: %+v", got, want)
	}
	q := `SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`
	er, err := eager.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	br, err := batched.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if er.String() != br.String() {
		t.Errorf("query results diverge:\neager:\n%s\nbatched:\n%s", er, br)
	}

	// The batched run actually deferred and amortized work...
	im := batched.Metrics().Ingest
	if im == nil || im.BufferedOps == 0 || im.Flushes == 0 {
		t.Fatalf("batched mode reported no ingest activity: %+v", im)
	}
	if im.FlushedOps != im.BufferedOps || im.PendingOps != 0 {
		t.Errorf("flush accounting: %+v", im)
	}
	// ...while eager mode carries none of the machinery (its metrics
	// output must stay byte-identical to the pre-batching build).
	if eager.Metrics().Ingest != nil {
		t.Error("eager mode must not report ingest metrics")
	}
}

// Every flush trigger: the ops threshold, the read path, DB.FlushIngest,
// and transaction commit. Reads must always see their own buffered
// writes.
func TestIngestFlushTriggers(t *testing.T) {
	db, oids := testDBWithConfig(t, 3, Config{PageCap: 16, IngestFlushOps: 100})
	db.FlushIngest() // drain the setup tail

	// Below the threshold nothing flushes...
	for i := 0; i < 3; i++ {
		mustAnnotate(t, db, oids[0], annText("Disease", i))
	}
	if im := db.Metrics().Ingest; im.PendingOps != 3 {
		t.Fatalf("pending after 3 buffered adds = %d, want 3", im.PendingOps)
	}
	// ...but a query flushes on demand and sees the writes: bird 1 now
	// has 1+3 disease annotations.
	res, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 4`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("read-triggered flush: rows = %d, want 1\n%s", len(res.Rows), res)
	}
	if im := db.Metrics().Ingest; im.PendingOps != 0 {
		t.Errorf("pending after read = %d, want 0", im.PendingOps)
	}

	// Explicit flush.
	mustAnnotate(t, db, oids[1], annText("Anatomy", 10))
	db.FlushIngest()
	if im := db.Metrics().Ingest; im.PendingOps != 0 {
		t.Errorf("pending after FlushIngest = %d, want 0", im.PendingOps)
	}

	// Transaction commit flushes the batch it applied.
	tx := db.Begin()
	if _, err := tx.AddAnnotation("Birds", oids[2], annText("Behavior", 11), nil, "txer"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if im := db.Metrics().Ingest; im.PendingOps != 0 {
		t.Errorf("pending after commit = %d, want 0", im.PendingOps)
	}

	// The annotation accessors are read paths too.
	mustAnnotate(t, db, oids[0], annText("Other", 12))
	db.Annotations(oids[0])
	if im := db.Metrics().Ingest; im.PendingOps != 0 {
		t.Errorf("pending after Annotations() = %d, want 0", im.PendingOps)
	}

	// The ops threshold flushes without any read.
	db2, oids2 := testDBWithConfig(t, 1, Config{PageCap: 16, IngestFlushOps: 2})
	db2.FlushIngest()
	f0 := db2.Metrics().Ingest.Flushes
	mustAnnotate(t, db2, oids2[0], annText("Disease", 20))
	mustAnnotate(t, db2, oids2[0], annText("Disease", 21))
	if im := db2.Metrics().Ingest; im.PendingOps != 0 || im.Flushes != f0+1 {
		t.Errorf("threshold flush: pending=%d flushes=%d, want 0 and %d", im.PendingOps, im.Flushes, f0+1)
	}
}

// The interval flusher drains an idle buffer without any read or further
// write.
func TestIngestIntervalFlush(t *testing.T) {
	db, oids := testDBWithConfig(t, 1, Config{
		PageCap: 16, IngestFlushOps: 1 << 30, IngestFlushInterval: 5 * time.Millisecond,
	})
	t.Cleanup(func() { db.Close() })
	db.FlushIngest()
	mustAnnotate(t, db, oids[0], annText("Disease", 1))
	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().Ingest.PendingOps != 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never drained the buffer")
		}
		time.Sleep(time.Millisecond)
	}
	if got := diseaseCount(t, db, oids[0]); got != 2 {
		t.Errorf("disease after interval flush = %d, want 2", got)
	}
}

// A checkpoint must flush pending deltas first, and the checkpointed
// state must recover with the flushed summaries intact.
func TestCheckpointFlushesIngest(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALDir: dir, PageCap: 16, IngestFlushOps: 100}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := db.LinkInstance("Birds", "ClassBird1", true); err != nil {
		t.Fatal(err)
	}
	oid, err := db.Insert("Birds", model.NewInt(1), model.NewText("Bird001"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.AddAnnotation("Birds", oid, annText("Disease", i), nil, "tester"); err != nil {
			t.Fatal(err)
		}
	}
	if im := db.Metrics().Ingest; im.PendingOps != 3 {
		t.Fatalf("pending before checkpoint = %d, want 3", im.PendingOps)
	}
	ok, err := db.Checkpoint()
	if err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	if im := db.Metrics().Ingest; im.PendingOps != 0 {
		t.Errorf("pending after checkpoint = %d, want 0", im.PendingOps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got := labelCount(t, rdb, "Birds", oid, "Disease"); got != 3 {
		t.Errorf("disease after checkpoint recovery = %d, want 3", got)
	}
}

// Deferring maintenance must not change durability: the WAL stream of a
// batched run is byte-identical to the eager run's, and a crash at any
// record boundary recovers — under the batched config — to exactly the
// eager committed-prefix oracle, derived state included. Flush
// boundaries are a subset of these cuts, so a crash between buffering
// and flushing is covered: replay re-buffers and re-flushes.
func TestIngestWALStreamAndRecovery(t *testing.T) {
	base := t.TempDir()
	eagerDir := filepath.Join(base, "eager")
	batchDir := filepath.Join(base, "batch")
	edb, err := Open(Config{WALDir: eagerDir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	tortureWorkload(t, edb)
	bdb, err := Open(Config{WALDir: batchDir, PageCap: 16, IngestFlushOps: 3})
	if err != nil {
		t.Fatal(err)
	}
	tortureWorkload(t, bdb)
	if got, want := summaryState(t, bdb), summaryState(t, edb); !reflect.DeepEqual(got, want) {
		t.Errorf("live batched summary state diverges from eager:\n got: %+v\nwant: %+v", got, want)
	}
	if err := edb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bdb.Close(); err != nil {
		t.Fatal(err)
	}

	batchLog, err := os.ReadFile(filepath.Join(batchDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	eres, err := wal.Recover(filepath.Join(eagerDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wal.Recover(filepath.Join(batchDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(eres.Records) != len(res.Records) {
		t.Fatalf("record counts differ: eager %d, batched %d — deferred maintenance must not change the log",
			len(eres.Records), len(res.Records))
	}
	for i := range res.Records {
		e, b := eres.Records[i], res.Records[i]
		if e.Type != b.Type || e.TxID != b.TxID || e.LSN != b.LSN {
			t.Fatalf("record %d differs: eager type=%d tx=%d lsn=%d, batched type=%d tx=%d lsn=%d",
				i, e.Type, e.TxID, e.LSN, b.Type, b.TxID, b.LSN)
		}
		// DefineInstance payloads gob-encode the classifier's training
		// maps, whose encoding order is nondeterministic — two eager runs
		// differ the same way. Every other payload must be byte-equal.
		if e.Type != recDefineInstance && !bytes.Equal(e.Payload, b.Payload) {
			t.Fatalf("record %d (type %d) payload differs between eager and batched runs", i, e.Type)
		}
	}
	recoverAt := func(name string, cutLen int64, wantRecords int) {
		dir := filepath.Join(base, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), batchLog[:cutLen], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(Config{WALDir: dir, PageCap: 16, IngestFlushOps: 3})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", name, err)
		}
		defer rdb.Close()
		odb := oracleCommittedPrefix(t, res.Records[:wantRecords])
		if got, want := logicalState(t, rdb), logicalState(t, odb); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recovered logical state diverges from eager oracle (%d records)", name, wantRecords)
		}
		if got, want := summaryState(t, rdb), summaryState(t, odb); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recovered summary state diverges from eager oracle (%d records)\n got: %+v\nwant: %+v",
				name, wantRecords, got, want)
		}
	}
	recoverAt("cut-0", 0, 0)
	for i := range res.Records {
		end := res.End
		if i+1 < len(res.Offsets) {
			end = res.Offsets[i+1]
		}
		recoverAt(fmt.Sprintf("cut-%d", i+1), end, i+1)
	}
}

// TestIngestConcurrentStress races batched writers against epoch
// readers, explicit flushes, and checkpoints — the `make ingest-stress`
// leg, run under -race.
func TestIngestConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{
		WALDir: dir, PageCap: 16,
		IngestFlushOps: 8, IngestFlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := db.LinkInstance("Birds", "ClassBird1", true); err != nil {
		t.Fatal(err)
	}
	var oids []int64
	for i := 0; i < 8; i++ {
		oid, err := db.Insert("Birds", model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	const writers, perWriter = 4, 50
	stop := make(chan struct{})
	var aux sync.WaitGroup
	for r := 0; r < 2; r++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(`SELECT name FROM Birds r
					WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1`, nil); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				db.Annotations(oids[0])
			}
		}()
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			db.FlushIngest()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				oid := oids[(w+i)%len(oids)]
				if _, err := db.AddAnnotation("Birds", oid, annText("Disease", i), nil, "stress"); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	db.FlushIngest()

	tbl, _ := db.Table("Birds")
	total := 0
	for _, oid := range oids {
		anns := db.Annotations(oid)
		total += len(anns)
		obj := tbl.GetSummaries(oid).Get("ClassBird1")
		if obj == nil {
			if len(anns) > 0 {
				t.Errorf("tuple %d has %d annotations but no summary object", oid, len(anns))
			}
			continue
		}
		if obj.TotalCount() != len(anns) {
			t.Errorf("tuple %d: summary covers %d annotations, store has %d", oid, obj.TotalCount(), len(anns))
		}
	}
	if total != writers*perWriter {
		t.Errorf("total annotations = %d, want %d", total, writers*perWriter)
	}
}

// The attach/delete/re-attach lifecycle behaves identically in eager
// mode, batched mode, and through batched WAL recovery.
func TestAttachDeleteReattachLifecycle(t *testing.T) {
	churn := func(db *DB, oids []int64) error {
		ann, err := db.AddAnnotation("Birds", oids[0], annText("Disease", 80), []string{"name"}, "tester")
		if err != nil {
			return err
		}
		if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
			return err
		}
		if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil { // duplicate: no-op
			return err
		}
		if err := db.DeleteAnnotation("Birds", ann.ID); err != nil {
			return err
		}
		ann2, err := db.AddAnnotation("Birds", oids[0], annText("Disease", 81), nil, "tester")
		if err != nil {
			return err
		}
		if err := db.AttachAnnotation("Birds", oids[1], ann2.ID); err != nil {
			return err
		}
		if err := db.DeleteAnnotation("Birds", ann2.ID); err != nil {
			return err
		}
		ann3, err := db.AddAnnotation("Birds", oids[1], annText("Anatomy", 82), nil, "tester")
		if err != nil {
			return err
		}
		return db.AttachAnnotation("Birds", oids[0], ann3.ID)
	}

	eager, eagerOids := testDB(t, 2)
	if err := churn(eager, eagerOids); err != nil {
		t.Fatal(err)
	}
	batched, batchedOids := testDBWithConfig(t, 2, Config{PageCap: 16, IngestFlushOps: 2})
	if err := churn(batched, batchedOids); err != nil {
		t.Fatal(err)
	}
	want := summaryState(t, eager)
	if got := summaryState(t, batched); !reflect.DeepEqual(got, want) {
		t.Errorf("batched lifecycle diverges from eager:\n got: %+v\nwant: %+v", got, want)
	}

	// Same lifecycle against a durable batched database, recovered from
	// its log after an unflushed tail.
	dir := t.TempDir()
	cfg := Config{WALDir: dir, PageCap: 16, IngestFlushOps: 2}
	wdb, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)
	if _, err := wdb.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := wdb.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := wdb.DefineSnippet("TextSummary1", 200, 80); err != nil {
		t.Fatal(err)
	}
	if err := wdb.LinkInstance("Birds", "ClassBird1", false); err != nil {
		t.Fatal(err)
	}
	if err := wdb.LinkInstance("Birds", "TextSummary1", false); err != nil {
		t.Fatal(err)
	}
	families := []string{"Anatidae", "Corvidae", "Laridae"}
	var walOids []int64
	for i := 1; i <= 2; i++ {
		oid, err := wdb.Insert("Birds",
			model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%03d", i)), model.NewText(families[i%3]))
		if err != nil {
			t.Fatal(err)
		}
		walOids = append(walOids, oid)
		for d := 0; d < i%5; d++ {
			if _, err := wdb.AddAnnotation("Birds", oid, annText("Disease", d), nil, "tester"); err != nil {
				t.Fatal(err)
			}
		}
		for a := 0; a < i%3; a++ {
			if _, err := wdb.AddAnnotation("Birds", oid, annText("Anatomy", a), nil, "tester"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := wdb.AddAnnotation("Birds", oid, annText("Behavior", 0), nil, "tester"); err != nil {
			t.Fatal(err)
		}
	}
	if err := churn(wdb, walOids); err != nil {
		t.Fatal(err)
	}
	if err := wdb.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got := summaryState(t, rdb); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered lifecycle diverges from eager:\n got: %+v\nwant: %+v", got, want)
	}
}
