package engine

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/pager"
	"repro/internal/plan"
)

// rowStrings renders a result's tuples for order-sensitive comparison.
func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Tuple.String()
	}
	return out
}

// TestFetchModeDifferential is the end-to-end differential of the two
// index fetch paths: for every combination of buffer pool on/off and
// backward vs conventional pointers, forcing sorted and ordered fetch
// returns identical row multisets, and identical sequences once an
// ORDER BY pins the output order (the compensating Sort above the
// page-ordered fetch).
func TestFetchModeDifferential(t *testing.T) {
	configs := map[string]Config{
		"nopool": {PageCap: 8},
		"pool":   {PageCap: 8, BufferPoolPages: pager.MinPoolFrames},
	}
	for cfgName, cfg := range configs {
		db, _ := testDBWithConfig(t, 60, cfg)
		if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			t.Fatal(err)
		}
		for _, conv := range []bool{false, true} {
			run := func(fetch, q string) []string {
				t.Helper()
				res, err := db.Query(q, &optimizer.Options{
					ForceFetch: fetch, ConventionalPointers: conv})
				if err != nil {
					t.Fatalf("%s conv=%v %s: %v", cfgName, conv, fetch, err)
				}
				if !strings.Contains(plan.Explain(res.Plan), "fetch="+fetch) {
					t.Fatalf("%s conv=%v: plan ignored ForceFetch=%s:\n%s",
						cfgName, conv, fetch, plan.Explain(res.Plan))
				}
				return rowStrings(res)
			}

			// Bag semantics: no ORDER BY, so only the multisets must match.
			bagQ := `SELECT id, name FROM Birds r
			  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3`
			sorted, ordered := run("sorted", bagQ), run("ordered", bagQ)
			if len(sorted) != len(ordered) {
				t.Fatalf("%s conv=%v: sorted %d rows, ordered %d", cfgName, conv, len(sorted), len(ordered))
			}
			a := append([]string(nil), sorted...)
			b := append([]string(nil), ordered...)
			sort.Strings(a)
			sort.Strings(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s conv=%v: multisets diverge at %d:\n%s\nvs\n%s", cfgName, conv, i, a[i], b[i])
				}
			}

			// Pinned order: the Sort above the page-ordered fetch must
			// restore exactly the sequence the ordered path streams.
			ordQ := bagQ + ` ORDER BY name`
			s2, o2 := run("sorted", ordQ), run("ordered", ordQ)
			if len(s2) != len(o2) {
				t.Fatalf("%s conv=%v: ordered-query row counts diverge", cfgName, conv)
			}
			for i := range s2 {
				if s2[i] != o2[i] {
					t.Fatalf("%s conv=%v: ordered results diverge at row %d:\n%s\nvs\n%s",
						cfgName, conv, i, s2[i], o2[i])
				}
			}
		}
	}
}

// TestFetchDecisionCostBased checks the optimizer's order/fetch
// tradeoff. Without a pool every page is resident, so consuming the
// index's count order costs nothing extra: the Sort is eliminated and
// the scan fetches in order. With a small pool and a hit list spanning
// more distinct pages than the pool has frames, the random in-order
// fetch re-faults pages, and the optimizer keeps the Sort over a
// page-ordered fetch instead.
func TestFetchDecisionCostBased(t *testing.T) {
	q := `SELECT id FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3
	  ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`

	cold, _ := testDBWithConfig(t, 200, Config{PageCap: 2})
	if err := cold.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	out, err := cold.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(eliminated: index order)") || !strings.Contains(out, "fetch=ordered") {
		t.Errorf("no pool: want sort elimination with ordered fetch, got:\n%s", out)
	}

	// 200 birds at PageCap 2 span 100 data pages; 2 in 5 birds match, so
	// the hit list touches far more pages than the 16-frame pool holds
	// and the in-order random fetch would re-fault most of them.
	pooled, _ := testDBWithConfig(t, 200, Config{PageCap: 2, BufferPoolPages: pager.MinPoolFrames})
	if err := pooled.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	tbl, err := pooled.Table("Birds")
	if err != nil {
		t.Fatal(err)
	}
	if pooled.BufferPool().Frames() >= tbl.Data.Pages() {
		t.Fatalf("fixture too small: %d frames hold all %d pages",
			pooled.BufferPool().Frames(), tbl.Data.Pages())
	}
	out, err = pooled.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "(eliminated") || !strings.Contains(out, "fetch=sorted") {
		t.Errorf("small pool: want Sort kept over sorted fetch, got:\n%s", out)
	}
}

// TestFetchBudgetThroughEngine proves the hit-list budget charge
// surfaces through a full query: a per-query budget smaller than the
// probe's hit list fails with the typed sentinel, attributed to the
// index scan.
func TestFetchBudgetThroughEngine(t *testing.T) {
	db, _ := testDB(t, 60)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	// Disease = 2 hits 12 of 60 birds — few enough that the optimizer
	// takes the index path, more than the 5-row budget admits.
	_, err := db.Query(`SELECT id FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2`,
		&optimizer.Options{Budget: exec.NewBudget(5, 0, 0)})
	if !errors.Is(err, exec.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var be *exec.BudgetError
	if !errors.As(err, &be) || be.Op != "SummaryIndexScan" {
		t.Fatalf("err = %v, want *BudgetError from SummaryIndexScan", err)
	}
}

// TestParallelSortedFetchMatchesSerial runs a sorted-fetch index scan
// under a worker pool: the page-boundary partitioning of the sorted hit
// list must reproduce the serial run's exact row sequence (shares
// concatenate in partition order), not just its multiset.
func TestParallelSortedFetchMatchesSerial(t *testing.T) {
	db, _ := testDBWithConfig(t, 100, Config{PageCap: 4})
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id, name FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1`
	serial, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(par.Plan), "Gather") {
		t.Skipf("cost model declined parallelism:\n%s", plan.Explain(par.Plan))
	}
	a, b := rowStrings(serial), rowStrings(par)
	if len(a) != len(b) {
		t.Fatalf("serial %d rows, parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverges:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
