package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db, oids := testDB(t, 15)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateDataIndex("Birds", "id"); err != nil {
		t.Fatal(err)
	}
	// A column-attached annotation and a multi-tuple attachment, to
	// exercise both replay paths.
	if _, err := db.AddAnnotation("Birds", oids[0], "column note on family", []string{"family"}, "u"); err != nil {
		t.Fatal(err)
	}
	shared := mustAnnotate(t, db, oids[1], annText("Disease", 500))
	if err := db.AttachAnnotation("Birds", oids[2], shared.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same logical content: row counts, annotation counts, summaries.
	t1, _ := db.Table("Birds")
	t2, _ := db2.Table("Birds")
	if t1.Len() != t2.Len() {
		t.Fatalf("tuple counts: %d vs %d", t1.Len(), t2.Len())
	}
	if db.AnnotationCount() != db2.AnnotationCount() {
		t.Fatalf("annotation counts: %d vs %d", db.AnnotationCount(), db2.AnnotationCount())
	}
	if t1.ColAttachedAnns != t2.ColAttachedAnns {
		t.Errorf("column-attached counters: %d vs %d", t1.ColAttachedAnns, t2.ColAttachedAnns)
	}

	// Per-tuple summary content matches (compare by the data id column,
	// since OIDs are reassigned).
	byID := func(d *DB) map[int64]model.SummarySet {
		out := map[int64]model.SummarySet{}
		tbl, _ := d.Table("Birds")
		res, err := d.Query("SELECT id FROM Birds", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			out[row.Tuple.Values[0].Int] = tbl.GetSummaries(row.Tuple.OID)
		}
		return out
	}
	a, b := byID(db), byID(db2)
	for id, setA := range a {
		setB := b[id]
		if setA == nil && setB == nil {
			continue
		}
		// Element IDs are reassigned on replay; compare counts per
		// label and object sizes.
		ca, cb := setA.Get("ClassBird1"), setB.Get("ClassBird1")
		if (ca == nil) != (cb == nil) {
			t.Fatalf("bird %d: classifier presence differs", id)
		}
		if ca != nil {
			for i := range ca.Reps {
				va := ca.Reps[i].Count
				vb, _ := cb.GetLabelValue(ca.Reps[i].Label)
				if va != vb {
					t.Fatalf("bird %d label %s: %d vs %d", id, ca.Reps[i].Label, va, vb)
				}
			}
		}
		sa, sb := setA.Get("TextSummary1"), setB.Get("TextSummary1")
		if (sa == nil) != (sb == nil) || (sa != nil && sa.Size() != sb.Size()) {
			t.Fatalf("bird %d: snippet objects differ", id)
		}
	}

	// Queries agree, and the restored index is used. (SELECT * keeps all
	// columns, so the column-attached annotation added above does not
	// force the conservative effect-projection path.)
	q := `SELECT * FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3`
	r1, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("query rows: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	expl, _ := db2.Explain(q, nil)
	if !strings.Contains(expl, "SummaryBTreeScan") {
		t.Errorf("restored DB lost its index:\n%s", expl)
	}

	// The restored classifier still classifies.
	if db2.Classifier("ClassBird1") == nil {
		t.Fatal("classifier model not restored")
	}
	newOID, _ := db2.Insert("Birds", model.NewInt(999), model.NewText("New"), model.NewText("F"))
	if _, err := db2.AddAnnotation("Birds", newOID, annText("Disease", 1), nil, "u"); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := db2.Table("Birds")
	obj := tbl2.GetSummaries(newOID).Get("ClassBird1")
	if n, _ := obj.GetLabelValue("Disease"); n != 1 {
		t.Errorf("restored classifier misclassified: Disease=%d", n)
	}
}

func TestSnapshotMultiTupleAttachmentSurvives(t *testing.T) {
	db, oids := testDB(t, 5)
	shared := mustAnnotate(t, db, oids[0], annText("Disease", 9))
	if err := db.AttachAnnotation("Birds", oids[3], shared.ID); err != nil {
		t.Fatal(err)
	}
	before := diseaseCount(t, db, oids[3])

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("SELECT id FROM Birds WHERE id = 4", nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("lookup: %v, %d rows", err, len(res.Rows))
	}
	obj := res.Rows[0].Tuple.Summaries.Get("ClassBird1")
	if n, _ := obj.GetLabelValue("Disease"); n != before {
		t.Errorf("shared attachment lost: Disease=%d want %d", n, before)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input should fail")
	}
}
