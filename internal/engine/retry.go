package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/pager"
)

// RetryPolicy bounds retry loops around storage operations that may hit
// transient, injected, or environmental I/O faults.
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
}

// SnapshotRetry governs snapshot Save/Load. Transient pager faults
// (e.g. a FaultPolicy's FailFirstReads window) are absorbed by bounded
// retry with exponential backoff; persistent faults surface after
// Attempts tries.
var SnapshotRetry = RetryPolicy{Attempts: 5, Backoff: time.Millisecond}

// withRetry runs fn up to p.Attempts times, retrying only on transient
// storage faults (*pager.FaultError, whether returned or panicked —
// runRecovering converts the panic form). Any other error returns
// immediately.
func withRetry(p RetryPolicy, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		err = runRecovering(fn)
		var fe *pager.FaultError
		if err == nil || !errors.As(err, &fe) {
			return err
		}
		if i < attempts-1 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return fmt.Errorf("engine: giving up after %d attempts: %w", attempts, err)
}

// runRecovering invokes fn, converting a panicked *pager.FaultError
// (the storage layers' fault surface — see pager.FaultError) into an
// ordinary error. Unrelated panics propagate.
func runRecovering(fn func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		cause, ok := r.(error)
		var fe *pager.FaultError
		if !ok || !errors.As(cause, &fe) {
			panic(r)
		}
		err = cause
	}()
	return fn()
}
