package engine

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/optimizer"
)

func TestSelectDistinct(t *testing.T) {
	db, _ := testDB(t, 12)
	res, err := db.Query("SELECT DISTINCT family FROM Birds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("distinct families = %d\n%s", len(res.Rows), res)
	}
	// Summary-aware duplicate elimination: collapsed rows merge their
	// summaries — each family row carries the union of its birds'
	// classifier elements (same totals as GROUP BY family).
	grouped, err := db.Query("SELECT family, count(*) FROM Birds GROUP BY family", nil)
	if err != nil {
		t.Fatal(err)
	}
	byFamily := map[string]int{}
	for _, row := range grouped.Rows {
		d, _ := row.Tuple.Summaries.Get("ClassBird1").GetLabelValue("Disease")
		byFamily[row.Tuple.Values[0].Text] = d
	}
	for _, row := range res.Rows {
		obj := row.Tuple.Summaries.Get("ClassBird1")
		if obj == nil {
			t.Fatal("distinct row lost merged summaries")
		}
		d, _ := obj.GetLabelValue("Disease")
		if d != byFamily[row.Tuple.Values[0].Text] {
			t.Errorf("family %s: distinct merge %d != groupby merge %d",
				row.Tuple.Values[0].Text, d, byFamily[row.Tuple.Values[0].Text])
		}
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	db, _ := testDB(t, 13) // families split 5/4/4
	res, err := db.Query(`SELECT family, count(*) FROM Birds
		GROUP BY family HAVING count(*) >= 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no groups passed HAVING")
	}
	for _, row := range res.Rows {
		if row.Tuple.Values[1].Int < 5 {
			t.Errorf("group %s with count %d passed HAVING >= 5",
				row.Tuple.Values[0].Text, row.Tuple.Values[1].Int)
		}
	}
	total, err := db.Query("SELECT family, count(*) FROM Birds GROUP BY family", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) >= len(total.Rows) {
		t.Error("HAVING filtered nothing")
	}
}

func TestHavingOverSummaryExpression(t *testing.T) {
	db, _ := testDB(t, 12)
	// Groups whose MERGED summaries carry more than 5 disease
	// annotations — a summary-based HAVING (an S over aggregated rows).
	res, err := db.Query(`SELECT family, count(*) FROM Birds GROUP BY family
		HAVING $.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		d, _ := row.Tuple.Summaries.Get("ClassBird1").GetLabelValue("Disease")
		if d <= 5 {
			t.Errorf("group %s with Disease=%d passed", row.Tuple.Values[0].Text, d)
		}
	}
}

func TestHavingWithoutGroupByFails(t *testing.T) {
	db, _ := testDB(t, 3)
	if _, err := db.Query("SELECT name FROM Birds HAVING name = 'x'", nil); err == nil {
		t.Error("HAVING without GROUP BY/aggregates should fail")
	}
}

func TestHashJoinSelectedAndCorrect(t *testing.T) {
	db, _ := testDB(t, 20)
	obsSchema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "note", Kind: model.KindText})
	if _, err := db.CreateTable("Obs2", obsSchema); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if _, err := db.Insert("Obs2",
			model.NewInt(int64(i%20+1)), model.NewText("note")); err != nil {
			t.Fatal(err)
		}
	}
	q := "SELECT r.id FROM Birds r, Obs2 o WHERE r.id = o.id"
	expl, err := db.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, "HashJoin") {
		t.Errorf("hash join not selected without an index:\n%s", expl)
	}
	hash, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := db.Query(q, &optimizer.Options{ForceJoin: "nl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hash.Rows) != len(nl.Rows) || len(hash.Rows) != 60 {
		t.Fatalf("hash %d vs nl %d rows", len(hash.Rows), len(nl.Rows))
	}
}
