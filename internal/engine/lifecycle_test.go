package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// leftoverSortRuns counts spill files in the temp directory.
func leftoverSortRuns(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "insightnotes-sortrun-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// slowJoinQuery is a sort-over-join pipeline large enough to observe
// cancellation mid-flight.
const slowJoinQuery = `SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family ORDER BY r.id`

func TestQueryContextPreCancelled(t *testing.T) {
	db, _ := testDB(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := leftoverSortRuns(t)
	_, err := db.QueryContext(ctx, slowJoinQuery, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if after := leftoverSortRuns(t); after != before {
		t.Fatalf("cancelled query leaked temp files: %d -> %d", before, after)
	}
	// The shared lock must be released: an exclusive-lock operation and a
	// fresh query both succeed.
	if _, err := db.AddAnnotation("Birds", 1, annText("Behavior", 99), nil, "post"); err != nil {
		t.Fatalf("DB unusable after cancellation (write): %v", err)
	}
	if _, err := db.Query(`SELECT id FROM Birds LIMIT 1`, nil); err != nil {
		t.Fatalf("DB unusable after cancellation (read): %v", err)
	}
}

func TestQueryContextCancelMidFlight(t *testing.T) {
	db, _ := testDB(t, 25)
	// Slow every page read so the join cannot finish before the cancel.
	db.Accountant().SetReadDelay(200 * time.Microsecond)
	defer db.Accountant().SetReadDelay(0)
	before := leftoverSortRuns(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.QueryContext(ctx, slowJoinQuery,
		&optimizer.Options{ForceSort: "disk", SortRunLen: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %v)", err, time.Since(start))
	}
	if after := leftoverSortRuns(t); after != before {
		t.Fatalf("cancelled query leaked temp files: %d -> %d", before, after)
	}
	if _, err := db.AddAnnotation("Birds", 1, annText("Behavior", 98), nil, "post"); err != nil {
		t.Fatalf("lock not released after cancellation: %v", err)
	}
}

func TestQueryContextDeadline(t *testing.T) {
	db, _ := testDB(t, 25)
	db.Accountant().SetReadDelay(200 * time.Microsecond)
	defer db.Accountant().SetReadDelay(0)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, slowJoinQuery, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestStatementTimeout(t *testing.T) {
	db, _ := testDB(t, 25)
	db.Accountant().SetReadDelay(200 * time.Microsecond)
	defer db.Accountant().SetReadDelay(0)
	db.SetStatementTimeout(3 * time.Millisecond)
	defer db.SetStatementTimeout(0)
	// Plain Query (no caller context) must still observe the timeout.
	_, err := db.Query(slowJoinQuery, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// An explicit caller deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	db.Accountant().SetReadDelay(0)
	if _, err := db.QueryContext(ctx, `SELECT id FROM Birds LIMIT 1`, nil); err != nil {
		t.Fatalf("query under long explicit deadline failed: %v", err)
	}
}

// TestBudgetHashJoinVsSortSpill is the governor's contract: the same
// query over a budget smaller than the hash build side fails fast under
// the hash plan, while sort-based plans complete by spilling within the
// temp-file allowance.
func TestBudgetHashJoinVsSortSpill(t *testing.T) {
	db, _ := testDB(t, 30)
	tight := exec.NewBudget(20, 0, 1<<30) // < 30 build rows, ample spill

	_, err := db.Query(slowJoinQuery, &optimizer.Options{ForceJoin: "hash", Budget: tight})
	if !errors.Is(err, exec.ErrBudgetExceeded) {
		t.Fatalf("hash join under tight budget: want ErrBudgetExceeded, got %v", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Op != "HashJoin" {
		t.Fatalf("want QueryError naming HashJoin, got %v", err)
	}
	if qe.Fragment == "" {
		t.Fatal("QueryError should carry the plan fragment")
	}

	before := leftoverSortRuns(t)
	res, err := db.Query(slowJoinQuery,
		&optimizer.Options{ForceJoin: "nl", ForceSort: "disk", SortRunLen: 16, Budget: tight})
	if err != nil {
		t.Fatalf("sort-based plan should complete by spilling: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("join produced no rows")
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].Tuple.Values[0].Int > res.Rows[i].Tuple.Values[0].Int {
			t.Fatalf("spilled sort output out of order at %d", i)
		}
	}
	if after := leftoverSortRuns(t); after != before {
		t.Fatalf("spilling query leaked temp files: %d -> %d", before, after)
	}
}

func TestDefaultBudgetApplies(t *testing.T) {
	db, _ := testDB(t, 30)
	db.SetDefaultBudget(exec.NewBudget(5, 0, 0))
	// DISTINCT retains all 30 ids and cannot degrade: the breaker trips.
	_, err := db.Query(`SELECT DISTINCT id FROM Birds`, nil)
	if !errors.Is(err, exec.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded under default budget, got %v", err)
	}
	db.SetDefaultBudget(nil)
	if _, err := db.Query(`SELECT DISTINCT id FROM Birds`, nil); err != nil {
		t.Fatalf("unlimited after reset, got %v", err)
	}
}

// dbFingerprint captures externally observable catalog/statistics state
// for the no-mutation property.
func dbFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	tbl, err := db.Table("Birds")
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("tuples=%d anns=%d", tbl.Len(), db.AnnotationCount())
	for _, si := range tbl.Instances {
		fp += fmt.Sprintf(";%s=%s", si.Name, tbl.Stats(si.Name))
	}
	return fp
}

// TestCancelledQueryNeverMutates: a cancelled query must leave catalog
// contents and summary statistics untouched, whatever moment the cancel
// lands at.
func TestCancelledQueryNeverMutates(t *testing.T) {
	db, _ := testDB(t, 15)
	before := dbFingerprint(t, db)
	for trial := 0; trial < 8; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(trial)*500*time.Microsecond)
		_, err := db.QueryContext(ctx, slowJoinQuery, nil)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		if got := dbFingerprint(t, db); got != before {
			t.Fatalf("trial %d: cancelled query mutated state:\n before %s\n after  %s",
				trial, before, got)
		}
	}
}

// TestFaultInjectionTypedErrors: deterministic every-Kth read faults
// must surface as typed errors (never a panic), and once the policy is
// lifted the structures still satisfy P4 (index agrees with brute
// force) and P6 (B+Tree validity).
func TestFaultInjectionTypedErrors(t *testing.T) {
	db, _ := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`

	db.Accountant().SetFaultPolicy(&pager.FaultPolicy{EveryKthRead: 7})
	var faulted int
	for i := 0; i < 12; i++ {
		_, err := db.Query(q, nil)
		if err == nil {
			continue
		}
		var fe *pager.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("iteration %d: fault surfaced untyped: %v", i, err)
		}
		faulted++
	}
	if faulted == 0 {
		t.Fatal("every-7th-read policy never fired across 12 queries")
	}
	db.Accountant().SetFaultPolicy(nil)

	// P6: B+Tree structural invariants hold after the faulty runs.
	if err := db.SummaryIndex("Birds", "ClassBird1").Tree().Validate(); err != nil {
		t.Fatalf("P6 violated after faults: %v", err)
	}
	// P4: the index access path agrees with the brute-force scan.
	withIdx, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := func(r *Result) map[int64]bool {
		m := map[int64]bool{}
		for _, row := range r.Rows {
			m[row.Tuple.Values[0].Int] = true
		}
		return m
	}
	wi, ni := ids(withIdx), ids(noIdx)
	if len(wi) != len(ni) {
		t.Fatalf("P4 violated: index %d ids, scan %d ids", len(wi), len(ni))
	}
	for id := range ni {
		if !wi[id] {
			t.Fatalf("P4 violated: id %d found by scan but not by index", id)
		}
	}
}

func TestZoomUnderFaultsIsTyped(t *testing.T) {
	db, _ := testDB(t, 10)
	db.Accountant().SetFaultPolicy(&pager.FaultPolicy{EveryKthRead: 5})
	defer db.Accountant().SetFaultPolicy(nil)
	for i := 0; i < 6; i++ {
		_, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "id <= 5")
		if err == nil {
			continue
		}
		var fe *pager.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("zoom fault surfaced untyped: %v", err)
		}
	}
}

func TestSnapshotSaveRetriesTransientFaults(t *testing.T) {
	db, _ := testDB(t, 10)
	wantAnns := db.AnnotationCount()

	// Transient: the first 3 reads fault; SnapshotRetry's 5 attempts ride
	// through the window.
	db.Accountant().SetFaultPolicy(&pager.FaultPolicy{FailFirstReads: 3})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save should absorb transient faults: %v", err)
	}
	db.Accountant().SetFaultPolicy(nil)

	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.AnnotationCount(); got != wantAnns {
		t.Fatalf("round trip annotations: want %d, got %d", wantAnns, got)
	}
}

func TestSnapshotSaveGivesUpOnPersistentFaults(t *testing.T) {
	db, _ := testDB(t, 5)
	db.Accountant().SetFaultPolicy(&pager.FaultPolicy{EveryKthRead: 1})
	var buf bytes.Buffer
	err := db.Save(&buf)
	var fe *pager.FaultError
	if err == nil || !errors.As(err, &fe) {
		t.Fatalf("persistent faults: want typed failure after bounded retries, got %v", err)
	}
	// The DB is unharmed: lifting the policy makes Save work.
	db.Accountant().SetFaultPolicy(nil)
	buf.Reset()
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save after lifting the policy: %v", err)
	}
}

func TestLoadWithConfigRetriesWriteFaults(t *testing.T) {
	db, _ := testDB(t, 8)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snapBytes := buf.Bytes()

	// Transient write faults during replay: retried, same accountant, so
	// the FailFirst window is consumed across attempts.
	db2, err := LoadWithConfig(bytes.NewReader(snapBytes),
		Config{Faults: &pager.FaultPolicy{FailFirstWrites: 3}})
	if err != nil {
		t.Fatalf("Load should absorb transient write faults: %v", err)
	}
	if got, want := db2.AnnotationCount(), db.AnnotationCount(); got != want {
		t.Fatalf("round trip annotations: want %d, got %d", want, got)
	}

	// Persistent write faults: bounded failure, not a hang or panic.
	_, err = LoadWithConfig(bytes.NewReader(snapBytes),
		Config{Faults: &pager.FaultPolicy{EveryKthWrite: 1}})
	var fe *pager.FaultError
	if err == nil || !errors.As(err, &fe) {
		t.Fatalf("persistent write faults: want typed failure, got %v", err)
	}
}

func TestConfigStatementTimeoutAndBudget(t *testing.T) {
	db := New(Config{
		StatementTimeout: 123 * time.Millisecond,
		Budget:           exec.NewBudget(7, 0, 0),
	})
	if got := db.StatementTimeout(); got != 123*time.Millisecond {
		t.Fatalf("StatementTimeout: got %v", got)
	}
	if b := db.defaultBudget.Load(); b == nil || b.MaxBufferedRows != 7 {
		t.Fatalf("default budget not installed: %+v", b)
	}
}
