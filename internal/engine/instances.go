package engine

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/mining/bayes"
	"repro/internal/mining/clustream"
	"repro/internal/mining/lsa"
	"repro/internal/model"
)

// DefineClassifier registers a classifier summary instance with its
// ordered label vocabulary and trains its Naive Bayes model on the given
// per-label example texts.
func (db *DB) DefineClassifier(name string, labels []string, training map[string][]string) error {
	si := &catalog.SummaryInstance{Name: name, Type: model.SummaryClassifier, Labels: labels}
	clf := bayes.New(labels...)
	for label, texts := range training {
		for _, tx := range texts {
			if err := clf.Train(label, tx); err != nil {
				return err
			}
		}
	}
	return db.defineInstance(si, clf)
}

// DefineHierarchicalClassifier registers a classifier whose labels form
// a hierarchy (child -> parent), the multi-level summarization extension
// (the paper's future work). Annotations are classified to LEAF labels;
// ancestor labels accumulate their subtrees' element unions, so
// getLabelValue('Parent') is the exact subtree count, parent labels are
// indexable, and zooming on a parent drills into the combined subtree.
// Training examples are given per leaf label.
func (db *DB) DefineHierarchicalClassifier(name string, labels []string,
	parents map[string]string, training map[string][]string) error {
	si := &catalog.SummaryInstance{Name: name, Type: model.SummaryClassifier,
		Labels: labels, Parents: parents}
	clf := bayes.New(si.LeafLabels()...)
	for label, texts := range training {
		for _, tx := range texts {
			if err := clf.Train(label, tx); err != nil {
				return err
			}
		}
	}
	return db.defineInstance(si, clf)
}

// DefineSnippet registers a text-summarization instance: annotations
// longer than minChars are summarized into snippets of at most maxChars
// (the paper's setting: 1000 / 400).
func (db *DB) DefineSnippet(name string, minChars, maxChars int) error {
	si := &catalog.SummaryInstance{Name: name, Type: model.SummarySnippet,
		SnippetMinChars: minChars, SnippetMaxChars: maxChars}
	return db.defineInstance(si, nil)
}

// DefineCluster registers a clustering instance bounded to maxGroups
// micro-clusters per tuple.
func (db *DB) DefineCluster(name string, maxGroups int) error {
	si := &catalog.SummaryInstance{Name: name, Type: model.SummaryCluster,
		ClusterMaxGroups: maxGroups}
	return db.defineInstance(si, nil)
}

// defineInstance registers a summary instance as one logged operation.
// The classifier model is trained by the caller BEFORE logging, so the
// record carries the finished model state and replay reconstructs the
// identical classifier without the training corpus.
func (db *DB) defineInstance(si *catalog.SummaryInstance, clf *bayes.Classifier) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		if err := si.Validate(); err != nil {
			return 0, err
		}
		if _, dup := db.instances[strings.ToLower(si.Name)]; dup {
			return 0, fmt.Errorf("engine: summary instance %q already defined", si.Name)
		}
		entry := snapshotInstance{Def: *si}
		if clf != nil {
			entry.ClassifierState = clf.State()
		}
		lsn, err := db.logAppend(recDefineInstance, txid, pDefineInstance{Inst: entry})
		if err != nil {
			return 0, err
		}
		return lsn, db.applyDefineInstance(&entry)
	})
}

// applyDefineInstance installs a defined instance (and its trained
// classifier model, if any) — shared by the live path, WAL replay, and
// checkpoint reload.
func (db *DB) applyDefineInstance(entry *snapshotInstance) error {
	def := entry.Def
	if err := db.registerInstance(&def); err != nil {
		return err
	}
	if entry.ClassifierState != nil {
		db.classifiers[strings.ToLower(def.Name)] = bayes.FromState(entry.ClassifierState)
	}
	return nil
}

func (db *DB) registerInstance(si *catalog.SummaryInstance) error {
	if err := si.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(si.Name)
	if _, dup := db.instances[key]; dup {
		return fmt.Errorf("engine: summary instance %q already defined", si.Name)
	}
	db.instances[key] = si
	db.bumpCatalogVersion()
	return nil
}

// LinkInstance attaches a registered instance to a table, optionally
// building its Summary-BTree — the engine half of
// "ALTER TABLE t ADD [INDEXABLE] inst".
func (db *DB) LinkInstance(table, instance string, indexable bool) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		if _, ok := db.instances[strings.ToLower(instance)]; !ok {
			return 0, fmt.Errorf("engine: unknown summary instance %q", instance)
		}
		lsn, err := db.logAppend(recLinkInstance, txid, pLinkInstance{Table: table, Instance: instance, Indexable: indexable})
		if err != nil {
			return 0, err
		}
		return lsn, db.applyLinkInstance(table, instance, indexable)
	})
}

func (db *DB) applyLinkInstance(table, instance string, indexable bool) error {
	// Buffered annotations were added while this instance was not linked;
	// eager mode would have absorbed them into the old instance set only.
	db.flushIngestLocked()
	si, ok := db.instances[strings.ToLower(instance)]
	if !ok {
		return fmt.Errorf("engine: unknown summary instance %q", instance)
	}
	if err := db.cat.LinkInstance(table, si); err != nil {
		return err
	}
	db.bumpCatalogVersion()
	if indexable {
		return db.createSummaryIndex(table, instance)
	}
	return nil
}

// UnlinkInstance detaches an instance and drops its indexes —
// "ALTER TABLE t DROP inst".
func (db *DB) UnlinkInstance(table, instance string) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		lsn, err := db.logAppend(recUnlinkInstance, txid, pInstanceRef{Table: table, Instance: instance})
		if err != nil {
			return 0, err
		}
		return lsn, db.applyUnlinkInstance(table, instance)
	})
}

func (db *DB) applyUnlinkInstance(table, instance string) error {
	// Buffered annotations must reach the instance's summaries before it
	// detaches, exactly as eager maintenance would have.
	db.flushIngestLocked()
	if err := db.cat.UnlinkInstance(table, instance); err != nil {
		return err
	}
	delete(db.summaryIdx[strings.ToLower(table)], strings.ToLower(instance))
	delete(db.baselineIdx[strings.ToLower(table)], strings.ToLower(instance))
	db.bumpCatalogVersion()
	return nil
}

// CreateSummaryIndex builds a Summary-BTree over an instance's objects,
// bulk-loading from the existing summary storage (the Figure 8 bulk
// mode). Classifier instances only.
func (db *DB) CreateSummaryIndex(table, instance string) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		lsn, err := db.logAppend(recCreateSummaryIndex, txid, pInstanceRef{Table: table, Instance: instance})
		if err != nil {
			return 0, err
		}
		return lsn, db.createSummaryIndex(table, instance)
	})
}

func (db *DB) createSummaryIndex(table, instance string) error {
	// Bulk-load reads the stored summary objects; fold the buffered
	// ingest tail in first so the new index starts complete.
	db.flushIngestLocked()
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	si := t.Instance(instance)
	if si == nil {
		return fmt.Errorf("engine: table %q has no instance %q", table, instance)
	}
	if si.Type != model.SummaryClassifier {
		return fmt.Errorf("engine: only Classifier instances are indexable, %q is %s", instance, si.Type)
	}
	// Flip Indexable copy-on-write: published epochs hold the old
	// *SummaryInstance in their copied Instances slices, so mutating it
	// in place would race with pinned readers. The same pointer may be
	// linked into several tables — swap it everywhere it appears.
	cp := *si
	cp.Indexable = true
	if old, ok := db.instances[strings.ToLower(si.Name)]; ok && old == si {
		db.instances[strings.ToLower(si.Name)] = &cp
	}
	for _, tn := range db.cat.TableNames() {
		if tt, err := db.cat.Table(tn); err == nil {
			for i, x := range tt.Instances {
				if x == si {
					tt.Instances[i] = &cp
				}
			}
		}
	}
	si = &cp
	idx := index.NewSummaryBTree(db.acct, si.Name)
	if err := db.forEachStoredObject(t, si.Name, func(obj *model.SummaryObject, rid heap.RID) error {
		return idx.IndexObject(obj, rid)
	}); err != nil {
		return err
	}
	tkey := strings.ToLower(table)
	if db.summaryIdx[tkey] == nil {
		db.summaryIdx[tkey] = map[string]*index.SummaryBTree{}
	}
	db.summaryIdx[tkey][strings.ToLower(instance)] = idx
	// A new access path exists: cached plans that chose a sequential
	// scan for this instance's predicates are stale from here on.
	db.bumpCatalogVersion()
	return nil
}

// CreateBaselineIndex builds the baseline scheme (normalized side table
// + derived-column B-Tree) over an instance's objects.
func (db *DB) CreateBaselineIndex(table, instance string) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		lsn, err := db.logAppend(recCreateBaselineIndex, txid, pInstanceRef{Table: table, Instance: instance})
		if err != nil {
			return 0, err
		}
		return lsn, db.createBaselineIndex(table, instance)
	})
}

func (db *DB) createBaselineIndex(table, instance string) error {
	db.flushIngestLocked()
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	si := t.Instance(instance)
	if si == nil {
		return fmt.Errorf("engine: table %q has no instance %q", table, instance)
	}
	if si.Type != model.SummaryClassifier {
		return fmt.Errorf("engine: only Classifier instances are indexable, %q is %s", instance, si.Type)
	}
	idx := index.NewBaseline(db.acct, t.Data.PageCap(), si.Name)
	if err := db.forEachStoredObject(t, si.Name, func(obj *model.SummaryObject, rid heap.RID) error {
		return idx.IndexObject(obj)
	}); err != nil {
		return err
	}
	tkey := strings.ToLower(table)
	if db.baselineIdx[tkey] == nil {
		db.baselineIdx[tkey] = map[string]*index.Baseline{}
	}
	db.baselineIdx[tkey][strings.ToLower(instance)] = idx
	db.bumpCatalogVersion()
	return nil
}

// DropSummaryIndex removes the Summary-BTree on (table, instance).
// (A WAL commit-wait failure is deliberately swallowed to keep the
// historical void signature; the log's sticky error resurfaces on the
// next logged operation.)
func (db *DB) DropSummaryIndex(table, instance string) {
	db.runAuto(func(txid uint64) (uint64, error) {
		lsn, err := db.logAppend(recDropSummaryIndex, txid, pInstanceRef{Table: table, Instance: instance})
		if err != nil {
			return 0, err
		}
		db.applyDropSummaryIndex(table, instance)
		return lsn, nil
	})
}

func (db *DB) applyDropSummaryIndex(table, instance string) {
	delete(db.summaryIdx[strings.ToLower(table)], strings.ToLower(instance))
	db.bumpCatalogVersion()
}

// DropBaselineIndex removes the baseline index on (table, instance).
// Like DropSummaryIndex, WAL errors resurface on the next operation.
func (db *DB) DropBaselineIndex(table, instance string) {
	db.runAuto(func(txid uint64) (uint64, error) {
		lsn, err := db.logAppend(recDropBaselineIndex, txid, pInstanceRef{Table: table, Instance: instance})
		if err != nil {
			return 0, err
		}
		db.applyDropBaselineIndex(table, instance)
		return lsn, nil
	})
}

func (db *DB) applyDropBaselineIndex(table, instance string) {
	delete(db.baselineIdx[strings.ToLower(table)], strings.ToLower(instance))
	db.bumpCatalogVersion()
}

func (db *DB) forEachStoredObject(t *catalog.Table, instance string,
	fn func(*model.SummaryObject, heap.RID) error) error {
	var outer error
	t.SummaryStorage.Scan(func(_ heap.RID, oid int64, set model.SummarySet) bool {
		obj := set.Get(instance)
		if obj == nil {
			return true
		}
		rid, ok := t.DiskTupleLoc(oid)
		if !ok {
			return true
		}
		if err := fn(obj, rid); err != nil {
			outer = err
			return false
		}
		return true
	})
	return outer
}

// AddAnnotation attaches a raw annotation to a tuple (optionally to
// specific columns) and incrementally maintains every linked summary
// instance, the statistics, and the indexes — the maintenance paths of
// Section 4.1.2.
func (db *DB) AddAnnotation(table string, oid int64, text string, columns []string, author string) (*model.Annotation, error) {
	var ann *model.Annotation
	err := db.runAutoIngest(func(txid uint64) (uint64, error) {
		var lsn uint64
		var e error
		ann, lsn, e = db.addAnnotationOp(txid, table, oid, text, columns, author)
		return lsn, e
	})
	return ann, err
}

// addAnnotationOp validates, logs (with the ID and timestamp the add
// will assign), and applies one annotation. The caller holds the
// exclusive lock.
func (db *DB) addAnnotationOp(txid uint64, table string, oid int64, text string, columns []string, author string) (*model.Annotation, uint64, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return nil, 0, err
	}
	if _, ok := t.DiskTupleLoc(oid); !ok {
		return nil, 0, fmt.Errorf("engine: %s has no tuple %d", table, oid)
	}
	id, seq := db.cat.Anns.PeekID(), db.cat.Anns.PeekSeq()
	lsn, err := db.logAppend(recAddAnnotation, txid, pAddAnnotation{
		Table: table, OID: oid, ID: id, Seq: seq, Text: text, Columns: columns, Author: author,
	})
	if err != nil {
		return nil, 0, err
	}
	ann, err := db.applyAddAnnotation(table, oid, id, seq, text, columns, author)
	return ann, lsn, err
}

// applyAddAnnotation stores and absorbs one annotation under forced
// identifiers — shared by the live path, WAL replay, and checkpoint
// reload.
func (db *DB) applyAddAnnotation(table string, oid, id, seq int64, text string, columns []string, author string) (*model.Annotation, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return nil, err
	}
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return nil, fmt.Errorf("engine: %s has no tuple %d", table, oid)
	}
	ann := db.cat.Anns.AddWithID(id, seq, oid, text, columns, author)
	if len(columns) > 0 {
		t.ColAttachedAnns++
	}
	if db.bufferIngest(t, oid, ann) {
		return ann, nil
	}
	db.absorb(t, oid, rid, ann)
	return ann, nil
}

// AttachAnnotation attaches an existing annotation to an additional
// tuple (annotations may span arbitrary tuple combinations) and folds it
// into that tuple's summaries. Because the annotation keeps its ID, a
// later join of both tuples merges without double counting.
func (db *DB) AttachAnnotation(table string, oid, annID int64) error {
	return db.runAutoIngest(func(txid uint64) (uint64, error) {
		return db.attachAnnotationOp(txid, table, oid, annID)
	})
}

// attachAnnotationOp validates, logs, and applies one extra attachment.
// The caller holds the exclusive lock.
func (db *DB) attachAnnotationOp(txid uint64, table string, oid, annID int64) (uint64, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	if _, ok := t.DiskTupleLoc(oid); !ok {
		return 0, fmt.Errorf("engine: %s has no tuple %d", table, oid)
	}
	if _, ok := db.cat.Anns.Get(annID); !ok {
		return 0, fmt.Errorf("engine: no annotation %d", annID)
	}
	if db.cat.Anns.IsAttached(annID, oid) {
		// Attaching is idempotent: the annotation already targets this
		// tuple (as primary or via an earlier attach), so re-attaching
		// must not double count it — nothing is logged or absorbed.
		return 0, nil
	}
	lsn, err := db.logAppend(recAttachAnnotation, txid, pAttachAnnotation{Table: table, OID: oid, AnnID: annID})
	if err != nil {
		return 0, err
	}
	return lsn, db.applyAttachAnnotation(table, oid, annID)
}

func (db *DB) applyAttachAnnotation(table string, oid, annID int64) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return fmt.Errorf("engine: %s has no tuple %d", table, oid)
	}
	ann, ok := db.cat.Anns.Get(annID)
	if !ok {
		return fmt.Errorf("engine: no annotation %d", annID)
	}
	if !db.cat.Anns.AttachTo(annID, oid) {
		// Already attached — replaying a historical duplicate attach
		// record (or a racing re-attach) is a no-op, never a double count.
		return nil
	}
	if len(ann.Columns) > 0 {
		t.ColAttachedAnns++
	}
	if db.bufferIngest(t, oid, ann) {
		return nil
	}
	db.absorb(t, oid, rid, ann)
	return nil
}

// absorb folds one annotation into every summary instance of a tuple.
func (db *DB) absorb(t *catalog.Table, oid int64, rid heap.RID, ann *model.Annotation) {
	set := t.GetSummaries(oid).Clone()
	for _, si := range t.Instances {
		obj := set.Get(si.Name)
		created := false
		if obj == nil {
			obj = db.newEmptyObject(t, si, oid)
			set = append(set, obj)
			created = true
		}
		if !created {
			t.ForgetSummary(obj)
		}
		switch si.Type {
		case model.SummaryClassifier:
			db.absorbIntoClassifier(t, si, obj, ann, rid, created)
		case model.SummarySnippet:
			db.absorbIntoSnippet(si, obj, ann)
		case model.SummaryCluster:
			db.rebuildCluster(si, obj, oid)
		}
		t.ObserveSummary(obj)
	}
	t.PutSummaries(oid, set)
}

func (db *DB) newEmptyObject(t *catalog.Table, si *catalog.SummaryInstance, oid int64) *model.SummaryObject {
	obj := &model.SummaryObject{InstanceID: si.Name, TupleOID: oid, Type: si.Type}
	if si.Type == model.SummaryClassifier {
		for _, l := range si.Labels {
			obj.Reps = append(obj.Reps, model.Rep{Label: l})
		}
	}
	return obj
}

// absorbIntoClassifier classifies the annotation and increments its
// label, updating both index schemes incrementally: only the modified
// label is re-keyed (delete + re-insert), as in "Adding Annotation —
// Update". Statistics bracketing is done by the caller.
func (db *DB) absorbIntoClassifier(t *catalog.Table, si *catalog.SummaryInstance,
	obj *model.SummaryObject, ann *model.Annotation, rid heap.RID, created bool) {
	clf := db.classifiers[strings.ToLower(si.Name)]
	leaves := si.LeafLabels()
	label := leaves[len(leaves)-1] // default to the catch-all leaf
	if clf != nil {
		label = clf.Classify(ann.Text)
	}
	// The leaf label plus every ancestor accumulates the annotation
	// (hierarchical instances; flat ones have no ancestors).
	touched := append([]string{label}, si.Ancestors(label)...)
	type change struct {
		label    string
		old, new int
	}
	var changes []change
	for _, l := range touched {
		li := obj.RepIndexByLabel(l)
		if li < 0 {
			obj.Reps = append(obj.Reps, model.Rep{Label: l})
			li = len(obj.Reps) - 1
		}
		old := obj.Reps[li].Count
		obj.Reps[li].Elements = insertSorted(obj.Reps[li].Elements, ann.ID)
		obj.Reps[li].Count = len(obj.Reps[li].Elements)
		changes = append(changes, change{l, old, obj.Reps[li].Count})
	}

	sIdx := db.summaryIndex(t.Name, si.Name)
	bIdx := db.baselineIndex(t.Name, si.Name)
	if created {
		if sIdx != nil {
			sIdx.IndexObject(obj, rid)
		}
		if bIdx != nil {
			bIdx.IndexObject(obj)
		}
		return
	}
	for _, ch := range changes {
		if sIdx != nil {
			sIdx.UpdateLabel(ch.label, ch.old, ch.new, rid)
		}
		if bIdx != nil {
			bIdx.UpdateLabel(obj.TupleOID, ch.label, ch.new)
		}
	}
}

// absorbIntoSnippet adds a snippet representative. Large annotations are
// summarized with LSA; short ones carry (at most maxChars of) their own
// text so keyword search over the instance stays complete.
func (db *DB) absorbIntoSnippet(si *catalog.SummaryInstance, obj *model.SummaryObject, ann *model.Annotation) {
	var snippet string
	if len(ann.Text) > si.SnippetMinChars {
		s := lsa.Summarizer{MaxChars: si.SnippetMaxChars, Concepts: 3, MinChars: si.SnippetMinChars}
		snippet = s.Summarize(ann.Text)
	} else {
		snippet = truncateRuneSafe(ann.Text, si.SnippetMaxChars)
	}
	obj.Reps = append(obj.Reps, model.Rep{Text: snippet, RepAnnID: ann.ID, Elements: []int64{ann.ID}})
}

// truncateRuneSafe cuts s to at most max bytes without splitting a
// multi-byte UTF-8 rune: a cut that lands mid-rune backs up to the
// rune's start so the result is always valid UTF-8.
func truncateRuneSafe(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

// rebuildCluster re-clusters all of the tuple's annotations. Clustering
// quality depends on the full point set, so the per-tuple object is
// rebuilt rather than patched (annotation volume per tuple is bounded).
func (db *DB) rebuildCluster(si *catalog.SummaryInstance, obj *model.SummaryObject, oid int64) {
	cl := clustream.New(clustream.Config{MaxClusters: si.ClusterMaxGroups})
	for _, a := range db.cat.Anns.ForTuple(oid) {
		cl.Insert(a.ID, a.Text, float64(a.Seq))
	}
	obj.Reps = obj.Reps[:0]
	for _, g := range cl.Groups() {
		elems := append([]int64(nil), g.Members...)
		sortInt64s(elems)
		obj.Reps = append(obj.Reps, model.Rep{
			Text: g.RepText, RepAnnID: g.RepID, Count: len(elems), Elements: elems,
		})
	}
}

// DeleteAnnotation removes a raw annotation and re-derives the affected
// summary objects ("Deleting Annotation" of Section 4.1.2).
func (db *DB) DeleteAnnotation(table string, annID int64) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		return db.deleteAnnotationOp(txid, table, annID)
	})
}

// deleteAnnotationOp validates, logs, and applies one annotation delete.
// The caller holds the exclusive lock.
func (db *DB) deleteAnnotationOp(txid uint64, table string, annID int64) (uint64, error) {
	if _, err := db.cat.Table(table); err != nil {
		return 0, err
	}
	if _, ok := db.cat.Anns.Get(annID); !ok {
		return 0, fmt.Errorf("engine: no annotation %d", annID)
	}
	lsn, err := db.logAppend(recDeleteAnnotation, txid, pDeleteAnnotation{Table: table, AnnID: annID})
	if err != nil {
		return 0, err
	}
	return lsn, db.applyDeleteAnnotation(table, annID)
}

func (db *DB) applyDeleteAnnotation(table string, annID int64) error {
	// Net-delta deletes operate on flushed summaries so the re-derive
	// below sees exactly the state eager maintenance would have built.
	db.flushIngestLocked()
	if _, err := db.cat.Table(table); err != nil {
		return err
	}
	ann, ok := db.cat.Anns.Get(annID)
	if !ok {
		return fmt.Errorf("engine: no annotation %d", annID)
	}
	// The annotation contributes to its primary tuple AND every tuple it
	// was later attached to; each must shed the contribution, or attached
	// tuples keep stale classifier counts and dangling zoom element IDs.
	// OIDs are catalog-wide unique, so each resolves to its owning table.
	oids := append([]int64{ann.TupleOID}, db.cat.Anns.Attachments(annID)...)
	db.cat.Anns.Delete(annID)
	for _, oid := range oids {
		t, rid, ok := db.tableForOID(oid)
		if !ok {
			continue
		}
		// Each attachment with column targets bumped its table's counter
		// by one; the delete must unwind every one of them.
		if len(ann.Columns) > 0 && t.ColAttachedAnns > 0 {
			t.ColAttachedAnns--
		}
		db.shedAnnotation(t, oid, rid, annID)
	}
	return nil
}

// tableForOID resolves a tuple OID to its owning table and heap location.
// OIDs are allocated from a catalog-wide counter, so at most one table
// holds any given OID.
func (db *DB) tableForOID(oid int64) (*catalog.Table, heap.RID, bool) {
	for _, name := range db.cat.TableNames() {
		t, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		if rid, ok := t.DiskTupleLoc(oid); ok {
			return t, rid, true
		}
	}
	return nil, heap.RID{}, false
}

// shedAnnotation re-derives one tuple's summary objects after annotation
// annID stopped targeting it — the per-tuple half of "Deleting
// Annotation" (Section 4.1.2), shared by annotation deletes and the
// cascade when a tuple delete removes a still-attached annotation.
func (db *DB) shedAnnotation(t *catalog.Table, oid int64, rid heap.RID, annID int64) {
	set := t.GetSummaries(oid).Clone()
	for _, obj := range set {
		si := t.Instance(obj.InstanceID)
		if si == nil {
			continue
		}
		t.ForgetSummary(obj)
		switch si.Type {
		case model.SummaryClassifier:
			// The annotation may contribute to several representatives
			// (its leaf label plus ancestors in a hierarchical instance):
			// remove it from each.
			for li := range obj.Reps {
				r := &obj.Reps[li]
				if !r.HasElement(annID) {
					continue
				}
				old := r.Count
				r.Elements = removeSorted(r.Elements, annID)
				r.Count = len(r.Elements)
				if idx := db.summaryIndex(t.Name, si.Name); idx != nil {
					idx.UpdateLabel(r.Label, old, r.Count, rid)
				}
				if idx := db.baselineIndex(t.Name, si.Name); idx != nil {
					idx.UpdateLabel(oid, r.Label, r.Count)
				}
			}
		case model.SummarySnippet:
			kept := obj.Reps[:0]
			for _, r := range obj.Reps {
				if r.RepAnnID != annID {
					kept = append(kept, r)
				}
			}
			obj.Reps = kept
		case model.SummaryCluster:
			db.rebuildCluster(si, obj, oid)
		}
		t.ObserveSummary(obj)
	}
	t.PutSummaries(oid, set)
}

func insertSorted(s []int64, v int64) []int64 {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	if i < len(s) && s[i] == v {
		// Element sets are sets: inserting an ID twice would double count
		// the annotation in Rep.Count.
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int64, v int64) []int64 {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
