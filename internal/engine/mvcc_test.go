package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

// TestEpochReaderStress runs 8 readers against two concurrent mutators
// and automatic checkpoints. Each writer inserts tuples strictly in
// PAIRS inside explicit transactions (with rollbacks mixed in), so
// every reader can assert two epoch invariants on every query it runs:
//
//   - atomicity: a snapshot never exposes half a transaction, so the
//     per-table row count is always even;
//   - monotonicity: row counts and Result.AsOfLSN never move backwards
//     within one reader (epochs only advance).
//
// Run with -race: the readers hold no lock at all, so any unversioned
// shared state on the query path surfaces here.
func TestEpochReaderStress(t *testing.T) {
	db, err := Open(Config{WALDir: t.TempDir(), PageCap: 16, CheckpointEveryN: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "tag", Kind: model.KindText},
	)
	tables := []string{"PairsA", "PairsB"}
	for _, tn := range tables {
		if _, err := db.CreateTable(tn, schema); err != nil {
			t.Fatal(err)
		}
	}

	const pairsPerWriter = 120
	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// Two writers, one table each: committed pairs, with every fourth
	// transaction rolled back (which must leave no trace and must not
	// block the automatic checkpoints firing throughout).
	for wi, tn := range tables {
		wg.Add(1)
		go func(wi int, tn string) {
			defer wg.Done()
			for i := 0; i < pairsPerWriter; i++ {
				tx := db.Begin()
				id := int64(i * 2)
				if _, err := tx.Insert(tn, model.NewInt(id), model.NewText("L")); err != nil {
					errCh <- err
					return
				}
				if _, err := tx.Insert(tn, model.NewInt(id+1), model.NewText("R")); err != nil {
					errCh <- err
					return
				}
				if i%4 == 3 {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(wi, tn)
	}

	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tn := tables[r%len(tables)]
			q := fmt.Sprintf("SELECT id FROM %s WITHOUT SUMMARIES", tn)
			lastRows, lastLSN := -1, uint64(0)
			for !done.Load() {
				res, err := db.Query(q, nil)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if len(res.Rows)%2 != 0 {
					errCh <- fmt.Errorf("reader %d: snapshot exposed half a transaction: %d rows", r, len(res.Rows))
					return
				}
				if len(res.Rows) < lastRows {
					errCh <- fmt.Errorf("reader %d: row count went backwards: %d -> %d", r, lastRows, len(res.Rows))
					return
				}
				if res.AsOfLSN < lastLSN {
					errCh <- fmt.Errorf("reader %d: AsOfLSN went backwards: %d -> %d", r, lastLSN, res.AsOfLSN)
					return
				}
				lastRows, lastLSN = len(res.Rows), res.AsOfLSN
			}
		}(r)
	}

	// Stop the readers once both writers finish; the monitor goroutine
	// keeps the readers exercising the final epochs in the meantime.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		// Writers are the first two wg members; simplest is to poll the
		// expected final counts.
		for {
			n, err := db.Query("SELECT id FROM PairsA WITHOUT SUMMARIES", nil)
			if err != nil {
				return
			}
			m, err := db.Query("SELECT id FROM PairsB WITHOUT SUMMARIES", nil)
			if err != nil {
				return
			}
			want := 2 * (pairsPerWriter - pairsPerWriter/4)
			if len(n.Rows) == want && len(m.Rows) == want {
				return
			}
		}
	}()
	<-writersDone
	done.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Committed pairs only: 120 transactions per writer, every fourth
	// rolled back.
	want := 2 * (pairsPerWriter - pairsPerWriter/4)
	for _, tn := range tables {
		res, err := db.Query(fmt.Sprintf("SELECT id FROM %s WITHOUT SUMMARIES", tn), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != want {
			t.Errorf("%s: %d rows, want %d", tn, len(res.Rows), want)
		}
	}
	if m := db.Metrics().WAL; m == nil || m.Checkpoints == 0 {
		t.Errorf("expected automatic checkpoints during the stress, metrics=%+v", db.Metrics().WAL)
	}
}

// TestCloseUnderLoad closes the database while readers are mid-flight.
// Close must drain pinned epochs before releasing the WAL and buffer
// pool, so every in-flight query either completes normally or fails
// with ErrClosed — never a use-after-close panic or a torn read.
func TestCloseUnderLoad(t *testing.T) {
	db, err := Open(Config{WALDir: t.TempDir(), PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("", model.Column{Name: "id", Kind: model.KindInt})
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := db.Insert("Birds", model.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 8
	var started sync.WaitGroup
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	started.Add(readers)
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			first := true
			for i := 0; ; i++ {
				res, err := db.Query("SELECT id FROM Birds WITHOUT SUMMARIES", nil)
				if first {
					started.Done()
					first = false
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errCh <- fmt.Errorf("reader %d: %w", r, err)
					}
					return
				}
				if len(res.Rows) != 64 {
					errCh <- fmt.Errorf("reader %d: torn read: %d rows", r, len(res.Rows))
					return
				}
			}
		}(r)
	}
	started.Wait() // every reader has completed at least one query
	if err := db.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// After Close every entry point reports ErrClosed (or its zero-value
	// form for the convenience accessors).
	if _, err := db.Query("SELECT id FROM Birds WITHOUT SUMMARIES", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close: %v, want ErrClosed", err)
	}
	if n := db.AnnotationCount(); n != 0 {
		t.Errorf("AnnotationCount after Close: %d, want 0", n)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestRollbackThenCheckpoint pins the bugfix this series exists for:
// a rolled-back transaction must not poison the live state, so an
// immediately following checkpoint SUCCEEDS (the seed refused it until
// restart), logs nothing of the transaction, and a reopen from that
// checkpoint shows no trace of the rolled-back effects.
func TestRollbackThenCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{WALDir: dir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("", model.Column{Name: "name", Kind: model.KindText})
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	keep, err := db.Insert("Birds", model.NewText("keeper"))
	if err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Insert("Birds", model.NewText("phantom")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.AddAnnotation("Birds", keep, "phantom note", nil, "txer"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	// The buffered transaction never became visible…
	res, err := db.Query("SELECT name FROM Birds WITHOUT SUMMARIES", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rolled-back transaction visible: %d rows", len(res.Rows))
	}
	if n := db.AnnotationCount(); n != 0 {
		t.Fatalf("rolled-back annotation visible: count=%d", n)
	}
	// …and must not block the checkpoint.
	ok, err := db.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after rollback: %v", err)
	}
	if !ok {
		t.Fatal("checkpoint refused after a rollback")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rdb, err := Open(Config{WALDir: dir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	res, err = rdb.Query("SELECT name FROM Birds WITHOUT SUMMARIES", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple.Values[0].Text != "keeper" {
		t.Errorf("recovered state diverges after rollback+checkpoint: %d rows", len(res.Rows))
	}
	if n := rdb.AnnotationCount(); n != 0 {
		t.Errorf("rolled-back annotation survived recovery: count=%d", n)
	}
}
