// Prepared statements and the plan-cached execution path.
//
// Prepare parses a SELECT once (with `?` placeholders); every
// ExecuteContext binds parameters into a fresh statement copy and runs
// through runSelectCached, which consults the optimizer.PlanCache
// keyed by (normalized text, bound parameter literals, options
// fingerprint) and validated against the catalog version. A hit skips
// building and optimizing entirely: the cached skeleton is rebound to
// the pinned epoch (plan.Rebind) and compiled. Binding parameter
// values into the key gives PostgreSQL-style custom plans — the
// optimizer's selectivity decisions see real constants, and each
// distinct constant earns its own cache slot.
//
// The classic Query/RunSelect/Exec paths never touch any of this, so
// the embedded API's behavior is unchanged.
package engine

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
)

// bumpCatalogVersion invalidates every cached plan; called from each
// catalog-shape mutation (table DDL, instance registration/links,
// index creation and drops) on its shared apply path, so live calls,
// transaction commits, and WAL replay all advance the version.
func (db *DB) bumpCatalogVersion() { db.catalogVersion.Add(1) }

// CatalogVersion returns the current catalog version (plan-cache
// entries created under an older version never hit).
func (db *DB) CatalogVersion() uint64 { return db.catalogVersion.Load() }

// RefreshStatistics is the explicit statistics-refresh hook: summary
// statistics are maintained incrementally, so heavy ingest can drift
// the stats a cached plan was costed under without any DDL happening.
// Calling this bumps the catalog version, invalidating every cached
// plan so the next execution re-costs its access paths against the
// current statistics.
func (db *DB) RefreshStatistics() { db.bumpCatalogVersion() }

// PlanCacheStats snapshots the plan cache telemetry (zero value when
// caching is disabled).
func (db *DB) PlanCacheStats() optimizer.PlanCacheStats { return db.planCache.Stats() }

// Stmt is a prepared SELECT: parsed once, executable many times with
// different parameters, concurrently. Statements remain valid across
// DDL — they hold no plan, only the parsed text; plans are looked up
// (and invalidated) per execution.
type Stmt struct {
	db      *DB
	sel     *sql.SelectStmt
	text    string // normalized statement text
	nParams int
}

// Prepare parses a SELECT statement containing `?` placeholders for
// later execution. Non-SELECT statements are rejected: DDL is brief
// and unparameterized, so preparing it buys nothing.
func (db *DB) Prepare(query string) (*Stmt, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Prepare expects SELECT, got %T", stmt)
	}
	return &Stmt{db: db, sel: sel, text: sql.Normalize(query), nParams: sql.CountPlaceholders(sel)}, nil
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.nParams }

// Text returns the normalized statement text.
func (s *Stmt) Text() string { return s.text }

// Execute is ExecuteContext with context.Background().
func (s *Stmt) Execute(params []model.Value, opts *optimizer.Options) (*Result, error) {
	return s.ExecuteContext(context.Background(), params, opts)
}

// ExecuteContext binds params into the prepared statement and runs it
// through the plan-cached path. Parameter count must match the
// placeholder count; values are spliced as literals, so type mismatches
// surface as the same evaluation errors the literal query would raise.
func (s *Stmt) ExecuteContext(ctx context.Context, params []model.Value, opts *optimizer.Options) (*Result, error) {
	bound, err := sql.BindSelect(s.sel, params)
	if err != nil {
		return nil, err
	}
	db := s.db
	if db.planCache == nil || db.lockCoupledReads {
		// No cache (or the lock-coupled benchmark baseline): the classic
		// path already does exactly the right thing for a bound statement.
		return db.RunSelectContext(ctx, bound, opts)
	}
	key := s.text
	if len(params) > 0 {
		lits := make([]string, len(params))
		for i, p := range params {
			lits[i] = p.SQLLiteral()
		}
		key += "\x00" + strings.Join(lits, "\x01")
	}
	ctx, cancel := db.applyTimeout(ctx)
	defer cancel()
	start := time.Now()
	db.flushIfDirty()
	res, err := func() (*Result, error) {
		ep, pin, err := db.pinEpoch()
		if err != nil {
			return nil, err
		}
		defer db.clock.Unpin(pin)
		return db.runSelectCached(ctx, ep, bound, key, opts)
	}()
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	db.metrics.record(time.Since(start), rows, err)
	return res, err
}

// QueryCached is QueryCachedContext with context.Background().
func (db *DB) QueryCached(query string, params []model.Value, opts *optimizer.Options) (*Result, error) {
	return db.QueryCachedContext(context.Background(), query, params, opts)
}

// QueryCachedContext is the ad-hoc flavor of the prepared path: the
// statement cache (keyed by normalized text) supplies the parsed
// statement, so a repeated statement skips the parser as well as the
// optimizer. With caching disabled it degrades to parse-and-plan per
// call, same as QueryContext.
func (db *DB) QueryCachedContext(ctx context.Context, query string, params []model.Value, opts *optimizer.Options) (*Result, error) {
	st, err := db.cachedStmt(query)
	if err != nil {
		return nil, err
	}
	return st.ExecuteContext(ctx, params, opts)
}

// cachedStmt resolves a parsed statement through the statement cache.
func (db *DB) cachedStmt(query string) (*Stmt, error) {
	if db.stmts == nil {
		return db.Prepare(query)
	}
	norm := sql.Normalize(query)
	if st := db.stmts.get(norm); st != nil {
		return st, nil
	}
	st, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	db.stmts.put(norm, st)
	return st, nil
}

// runSelectCached is runSelectResolved with the plan cache in front of
// the optimizer. The caller holds a pin on ep. EXPLAIN ANALYZE
// executions (opts.Collector set) bypass the cache: their instrumented
// plans are single-use by contract.
func (db *DB) runSelectCached(ctx context.Context, ep *dbEpoch, sel *sql.SelectStmt, key string, opts *optimizer.Options) (res *Result, err error) {
	defer recoverInto("Planner", &err)
	o := db.effectiveOptions(opts)
	if o.Collector != nil {
		r, _, e := db.runSelectResolved(ctx, ep, sel, opts)
		return r, e
	}
	fullKey := key + "\x00" + o.Fingerprint()
	version := db.catalogVersion.Load()
	env := ep.optimizerEnv(sel.Propagate)
	var optimized plan.Node
	cached := false
	if skel, ok := db.planCache.Get(fullKey, version); ok {
		// Rebind the skeleton's epoch-stamped table/index pointers to the
		// pinned epoch; a rebind failure (index dropped in a racing epoch
		// under an unchanged-looking key) falls back to a full re-plan.
		if re, rerr := plan.Rebind(skel, plan.RebindEnv{
			Table:         env.Cat.Table,
			SummaryIndex:  env.SummaryIdx,
			BaselineIndex: env.BaselineIdx,
		}); rerr == nil {
			optimized = re
			cached = true
		}
	}
	if optimized == nil {
		builder := &plan.Builder{Cat: ep.cat}
		root, resolver, berr := builder.Build(sel)
		if berr != nil {
			return nil, berr
		}
		optimized = optimizer.Optimize(root, resolver, env, o)
		db.planCache.Put(fullKey, version, optimized)
	}
	it, cerr := optimizer.Compile(optimized, env, o)
	if cerr != nil {
		return nil, cerr
	}
	if plan.IsParallel(optimized) {
		db.metrics.parallelPlans.Add(1)
	} else {
		db.metrics.serialPlans.Add(1)
	}
	qc := exec.NewQueryCtx(ctx, db.newQueryBudget(opts))
	rows, err := executeGuarded(qc, it, optimized)
	if err != nil {
		return nil, err
	}
	if !sel.Propagate {
		for _, row := range rows {
			row.Tuple.Summaries = nil
			row.AliasSets = nil
		}
	}
	schema := it.Schema()
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Col(i).Name
	}
	return &Result{Columns: cols, Schema: schema, Rows: rows, Plan: optimized,
		AsOfLSN: ep.lsn, CachedPlan: cached}, nil
}

// stmtCache is a bounded LRU of parsed prepared statements keyed by
// normalized text. Entries are immutable (*Stmt is read-only after
// Prepare), so concurrent executions share them freely.
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List
	entries map[string]*list.Element
}

type stmtEntry struct {
	key string
	st  *Stmt
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		return nil
	}
	return &stmtCache{cap: capacity, lru: list.New(), entries: make(map[string]*list.Element, capacity)}
}

func (c *stmtCache) get(key string) *Stmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*stmtEntry).st
}

func (c *stmtCache) put(key string, st *Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*stmtEntry).st = st
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*stmtEntry).key)
	}
	c.entries[key] = c.lru.PushFront(&stmtEntry{key: key, st: st})
}
