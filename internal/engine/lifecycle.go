package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
)

// QueryError reports a statement that failed inside query execution —
// an operator error, a resource-budget violation, or a recovered panic.
// Op names the failing operator when known; Fragment is the optimized
// plan (EXPLAIN text) for diagnostics. Unwrap exposes the cause, so
// errors.Is(err, exec.ErrBudgetExceeded) and errors.As with
// *exec.OpError / *pager.FaultError keep working through the wrapper.
//
// Context cancellation and deadline expiry are NOT wrapped: those
// surface bare so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) hold at every layer.
type QueryError struct {
	Op       string
	Fragment string
	Err      error
}

func (e *QueryError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("engine: query failed in %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("engine: query failed: %v", e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// QueryContext is Query with cancellation: the statement observes ctx
// between row batches and aborts with context.Canceled /
// context.DeadlineExceeded, releasing the shared lock and removing any
// spilled temp files. When ctx carries no deadline the DB's statement
// timeout (if configured) is applied.
func (db *DB) QueryContext(ctx context.Context, query string, opts *optimizer.Options) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query expects SELECT; use Exec for %T", stmt)
	}
	return db.RunSelectContext(ctx, sel, opts)
}

// RunSelectContext plans and executes an already-parsed SELECT under
// ctx (see QueryContext for semantics). The read pins the current epoch
// and runs without db.mu: mutators publish new epochs, readers never
// block them (or each other).
func (db *DB) RunSelectContext(ctx context.Context, sel *sql.SelectStmt, opts *optimizer.Options) (*Result, error) {
	ctx, cancel := db.applyTimeout(ctx)
	defer cancel()
	start := time.Now()
	// Batched-ingest mode: publish any buffered net deltas before
	// pinning (and before the optional RLock — flushing takes the
	// exclusive lock), so the query sees fully maintained summaries.
	db.flushIfDirty()
	if db.lockCoupledReads {
		// Benchmark baseline: emulate the pre-MVCC reader by taking the
		// shared lock for the statement's duration, so readers queue
		// behind mutators exactly as the lock-coupled engine did. Under
		// the RLock the pinned epoch is necessarily the live state.
		db.mu.RLock()
	}
	res, err := func() (*Result, error) {
		ep, s, err := db.pinEpoch()
		if err != nil {
			return nil, err
		}
		defer db.clock.Unpin(s)
		return db.runSelect(ctx, ep, sel, opts)
	}()
	if db.lockCoupledReads {
		db.mu.RUnlock()
	}
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	db.metrics.record(time.Since(start), rows, err)
	return res, err
}

// ExecContext is Exec with cancellation for the query-shaped statements
// (SELECT and ZOOM IN); DDL statements are brief and run to completion.
func (db *DB) ExecContext(ctx context.Context, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return db.RunSelectContext(ctx, s, nil)
	case *sql.AlterStmt:
		if s.Add {
			if err := db.LinkInstance(s.Table, s.Instance, s.Indexable); err != nil {
				return nil, err
			}
		} else {
			if err := db.UnlinkInstance(s.Table, s.Instance); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	case *sql.ZoomStmt:
		zooms, err := db.zoomContext(ctx, s)
		if err != nil {
			return nil, err
		}
		return zoomResult(zooms), nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// applyTimeout layers the DB's default statement timeout onto ctx when
// ctx has no deadline of its own; an explicit caller deadline wins.
func (db *DB) applyTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	d := db.StatementTimeout()
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// newQueryBudget snapshots the effective budget template (per-query
// override, else DB default) into a fresh accounting instance. Budgets
// carry usage counters, so sharing one instance across queries would
// leak charges between them.
func (db *DB) newQueryBudget(opts *optimizer.Options) *exec.Budget {
	tpl := db.defaultBudget.Load()
	if opts != nil && opts.Budget != nil {
		tpl = opts.Budget
	}
	if tpl == nil {
		return nil
	}
	return exec.NewBudget(tpl.MaxBufferedRows, tpl.MaxBufferedBytes, tpl.MaxSpillBytes)
}

// executeGuarded drives the physical plan to completion under a
// last-resort panic backstop. Operators already recover their own
// panics into *exec.OpError; this catches anything escaping that net
// (e.g. faults injected outside an operator's guarded section) so one
// poisoned query cannot take down the process or leave the DB locked.
func executeGuarded(qc *exec.QueryCtx, it exec.Iterator, optimized plan.Node) (rows []*exec.Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			err = &QueryError{Fragment: plan.Explain(optimized), Err: cause}
		}
	}()
	exec.SetIterContext(it, qc)
	rows, err = exec.Collect(it)
	if err != nil {
		return nil, wrapQueryError(err, optimized)
	}
	return rows, nil
}

// wrapQueryError classifies an execution error: context errors pass
// through bare (callers match them with errors.Is), operator failures
// and budget violations gain the QueryError envelope naming the
// operator and the plan fragment.
func wrapQueryError(err error, optimized plan.Node) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var oe *exec.OpError
	if errors.As(err, &oe) {
		return &QueryError{Op: oe.Op, Fragment: plan.Explain(optimized), Err: err}
	}
	var be *exec.BudgetError
	if errors.As(err, &be) {
		return &QueryError{Op: be.Op, Fragment: plan.Explain(optimized), Err: err}
	}
	return err
}

// recoverInto converts a panic escaping a non-iterator engine section
// (zoom's annotation fetches, snapshot scans) into an error; injected
// pager faults stay typed (*pager.FaultError) for errors.As.
func recoverInto(op string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	cause, ok := r.(error)
	if !ok {
		cause = fmt.Errorf("panic: %v", r)
	}
	*err = &QueryError{Op: op, Err: cause}
}
