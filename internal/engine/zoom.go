package engine

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/sql"
)

// ZoomResult is one tuple's zoom-in answer: the raw annotations behind
// one of its summary objects (optionally restricted to a classifier
// label or cluster group).
type ZoomResult struct {
	TupleOID    int64
	Instance    string
	Annotations []*model.Annotation
}

// ZoomIn retrieves the raw annotations contributing to the named summary
// instance of every tuple satisfying where (which may be empty). label
// restricts classifier objects to one class label's elements — the
// follow-up command the case study's Q1 uses to pull only the
// disease-related annotations of the reported birds.
func (db *DB) ZoomIn(table, instance, label, where string) ([]ZoomResult, error) {
	stmt := &sql.ZoomStmt{Table: table, Instance: instance, Label: label}
	if where != "" {
		e, err := sql.ParseExpr(where)
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return db.zoomContext(context.Background(), stmt)
}

// zoomContext runs a ZOOM IN under ctx. The annotation fetches behind
// each summary read the heap, so the loop is guarded against injected
// pager faults and ticks ctx between tuples.
func (db *DB) zoomContext(ctx context.Context, stmt *sql.ZoomStmt) (zooms []ZoomResult, err error) {
	ctx, cancel := db.applyTimeout(ctx)
	defer cancel()
	db.flushIfDirty()
	ep, s, err := db.pinEpoch()
	if err != nil {
		return nil, err
	}
	defer db.clock.Unpin(s)
	defer recoverInto("Zoom", &err)
	t, err := ep.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if t.Instance(stmt.Instance) == nil {
		return nil, fmt.Errorf("engine: table %q has no instance %q", stmt.Table, stmt.Instance)
	}
	sel := &sql.SelectStmt{
		Items:     []sql.SelectItem{{Star: true}},
		From:      []sql.TableRef{{Table: stmt.Table}},
		Where:     stmt.Where,
		Limit:     -1,
		Propagate: true,
	}
	res, err := db.runSelect(ctx, ep, sel, nil)
	if err != nil {
		return nil, err
	}
	var out []ZoomResult
	for _, row := range res.Rows {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		obj := row.Tuple.Summaries.Get(stmt.Instance)
		if obj == nil {
			continue
		}
		ids := obj.ElementIDs()
		if stmt.Label != "" {
			if li := obj.RepIndexByLabel(stmt.Label); li >= 0 {
				ids = append([]int64(nil), obj.Reps[li].Elements...)
			} else {
				ids = nil
			}
		}
		zr := ZoomResult{TupleOID: row.Tuple.OID, Instance: obj.InstanceID}
		for _, id := range ids {
			if a, ok := ep.cat.Anns.Get(id); ok {
				zr.Annotations = append(zr.Annotations, a)
			}
		}
		out = append(out, zr)
	}
	return out, nil
}

// zoomResult adapts zoom output to the generic Result shape: one row
// per (tuple, annotation) with columns (tuple_oid, annotation_id, text).
func zoomResult(zooms []ZoomResult) *Result {
	schema := model.NewSchema("",
		model.Column{Name: "tuple_oid", Kind: model.KindInt},
		model.Column{Name: "annotation_id", Kind: model.KindInt},
		model.Column{Name: "author", Kind: model.KindText},
		model.Column{Name: "text", Kind: model.KindText},
	)
	res := &Result{
		Columns: []string{"tuple_oid", "annotation_id", "author", "text"},
		Schema:  schema,
	}
	for _, z := range zooms {
		for _, a := range z.Annotations {
			res.Rows = append(res.Rows, &exec.Row{Tuple: model.NewTuple(z.TupleOID,
				model.NewInt(z.TupleOID), model.NewInt(a.ID),
				model.NewText(a.Author), model.NewText(a.Text))})
		}
	}
	return res
}
