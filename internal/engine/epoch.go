package engine

// MVCC snapshot reads. The engine publishes its queryable state —
// catalog tables, annotation store, summary instances, trained
// classifiers, and both index schemes — as an immutable EPOCH behind the
// accountant's mvcc.Clock. Mutators run under the exclusive lock as
// before, but finish by building copy-on-write shells of everything they
// touched (storage versions every page/node it supersedes, so a shell
// costs O(#tables + #instances + #indexes), never O(data)) and
// atomically publishing the next epoch. Readers pin an epoch, run
// entirely against its shells, and unpin — they never take db.mu, so
// queries proceed at full speed while mutations and checkpoints run.
//
// Publication ordering vs the WAL: a mutator appends its records (and
// its commit record) BEFORE it publishes, all under one exclusive hold,
// so an epoch's LSN watermark — captured at publish time — covers
// exactly the records whose effects the epoch exposes. Result.AsOfLSN
// is the pinned epoch's watermark, exact by construction.

import (
	"errors"
	"strings"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/mining/bayes"
)

// ErrClosed reports a read attempted after Close.
var ErrClosed = errors.New("engine: database is closed")

// dbEpoch is one immutable published snapshot of the engine's queryable
// state. All maps are private copies; the values are either immutable
// (instances, trained classifiers) or snapshot shells resolving storage
// through the version stores at the epoch's stamp.
type dbEpoch struct {
	stamp       uint64
	lsn         uint64 // WAL watermark the epoch reflects (0 without WAL)
	cat         *catalog.Catalog
	instances   map[string]*catalog.SummaryInstance
	classifiers map[string]*bayes.Classifier
	summaryIdx  map[string]map[string]*index.SummaryBTree
	baselineIdx map[string]map[string]*index.Baseline
}

func (ep *dbEpoch) summaryIndex(table, instance string) *index.SummaryBTree {
	return ep.summaryIdx[strings.ToLower(table)][strings.ToLower(instance)]
}

func (ep *dbEpoch) baselineIndex(table, instance string) *index.Baseline {
	return ep.baselineIdx[strings.ToLower(table)][strings.ToLower(instance)]
}

// publishLocked builds and publishes the next epoch from the current
// live state. The caller holds db.mu exclusively (or owns the DB before
// it is shared), with every WAL record of the mutation — including its
// commit record — already appended, so the captured LSN watermark covers
// exactly the published effects.
func (db *DB) publishLocked() {
	st := db.clock.Stamp()
	ep := &dbEpoch{
		stamp:       st,
		cat:         db.cat.AsOf(st),
		instances:   make(map[string]*catalog.SummaryInstance, len(db.instances)),
		classifiers: make(map[string]*bayes.Classifier, len(db.classifiers)),
		summaryIdx:  make(map[string]map[string]*index.SummaryBTree, len(db.summaryIdx)),
		baselineIdx: make(map[string]map[string]*index.Baseline, len(db.baselineIdx)),
	}
	for k, v := range db.instances {
		ep.instances[k] = v
	}
	for k, v := range db.classifiers {
		ep.classifiers[k] = v
	}
	for tk, m := range db.summaryIdx {
		mm := make(map[string]*index.SummaryBTree, len(m))
		for ik, x := range m {
			mm[ik] = x.AsOf(st)
		}
		ep.summaryIdx[tk] = mm
	}
	for tk, m := range db.baselineIdx {
		mm := make(map[string]*index.Baseline, len(m))
		for ik, x := range m {
			mm[ik] = x.AsOf(st)
		}
		ep.baselineIdx[tk] = mm
	}
	if db.wal != nil {
		ep.lsn = db.wal.AppendedLSN()
	}
	if db.publishHook != nil {
		db.publishHook(ep.lsn)
	}
	db.clock.Publish(ep)
	// The published epoch now reflects every flushed effect: if the ingest
	// buffer is empty, read paths no longer need to force a flush. Cleared
	// only here — after publication — so a reader that observes the flag
	// low is guaranteed an epoch covering all previously buffered ops.
	if db.ingest != nil && db.ingest.ops == 0 {
		db.ingestDirty.Store(false)
	}
}

// pinEpoch pins the current epoch for a read. The caller must Unpin the
// returned stamp when done. Fails with ErrClosed once Close has begun —
// the pin-then-check order guarantees that any reader admitted before
// the flag flipped holds a pin Close's drain waits for.
func (db *DB) pinEpoch() (*dbEpoch, uint64, error) {
	v, s := db.clock.Pin()
	if db.closedA.Load() {
		db.clock.Unpin(s)
		return nil, 0, ErrClosed
	}
	return v.(*dbEpoch), s, nil
}
