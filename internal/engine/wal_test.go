package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
)

// tortureWorkload drives a deterministic mixed mutation sequence through
// the public API: DDL, inserts, annotations (auto-commit and explicit
// transactions), a rolled-back transaction, deletes, index builds and
// drops, and a second table with a cross-table attachment. It is the
// logged history the boundary-kill matrix replays prefixes of.
func tortureWorkload(t *testing.T, db *DB) {
	t.Helper()
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSnippet("TextSummary1", 200, 80); err != nil {
		t.Fatal(err)
	}
	if err := db.LinkInstance("Birds", "ClassBird1", true); err != nil {
		t.Fatal(err)
	}
	if err := db.LinkInstance("Birds", "TextSummary1", false); err != nil {
		t.Fatal(err)
	}
	var oids []int64
	var annIDs []int64
	for i := 1; i <= 5; i++ {
		oid, err := db.Insert("Birds",
			model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%03d", i)), model.NewText("Anatidae"))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
		ann, err := db.AddAnnotation("Birds", oid, annText("Disease", i), nil, "tester")
		if err != nil {
			t.Fatal(err)
		}
		annIDs = append(annIDs, ann.ID)
	}
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateDataIndex("Birds", "id"); err != nil {
		t.Fatal(err)
	}

	// Explicit transaction, committed: its records become durable as one
	// unit when the commit record is forced.
	tx := db.Begin()
	oid6, err := tx.Insert("Birds",
		model.NewInt(6), model.NewText("Bird006"), model.NewText("Corvidae"))
	if err != nil {
		t.Fatal(err)
	}
	txAnn, err := tx.AddAnnotation("Birds", oid6, annText("Anatomy", 6), nil, "txer")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AttachAnnotation("Birds", oids[0], txAnn.ID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Explicit transaction, rolled back: its operations were buffered and
	// never reach the log or the live state — only the IDs it reserved
	// stay consumed (the later adds log past the gap).
	rb := db.Begin()
	if _, err := rb.Insert("Birds",
		model.NewInt(7), model.NewText("Bird007"), model.NewText("Laridae")); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.AddAnnotation("Birds", oids[1], annText("Behavior", 7), nil, "txer"); err != nil {
		t.Fatal(err)
	}
	rb.Rollback()

	if _, err := db.AddAnnotation("Birds", oids[2], annText("Other", 8), []string{"name"}, "tester"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteAnnotation("Birds", annIDs[3]); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteTuple("Birds", oids[4]); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	db.DropSummaryIndex("Birds", "ClassBird1")
	if err := db.UnlinkInstance("Birds", "TextSummary1"); err != nil {
		t.Fatal(err)
	}

	// Second table plus a cross-table attachment of an existing annotation.
	spots := model.NewSchema("", model.Column{Name: "place", Kind: model.KindText})
	if _, err := db.CreateTable("Spots", spots); err != nil {
		t.Fatal(err)
	}
	spotOID, err := db.Insert("Spots", model.NewText("lakeshore"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Spots", spotOID, annIDs[0]); err != nil {
		t.Fatal(err)
	}
}

// logicalState captures a DB's complete logical content for differential
// comparison (single-threaded tests; no lock needed).
func logicalState(t *testing.T, db *DB) *snapshot {
	t.Helper()
	snap, err := db.buildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// oracleCommittedPrefix builds the ground-truth state for a log prefix:
// a fresh in-memory database with exactly the committed records redone,
// in order — the state recovery must reproduce for a crash at that
// boundary.
func oracleCommittedPrefix(t *testing.T, recs []wal.Record) *DB {
	t.Helper()
	odb := New(Config{PageCap: 16})
	committed := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == recCommit {
			committed[r.TxID] = true
		}
	}
	for _, r := range recs {
		if r.Type == recCommit || !committed[r.TxID] {
			continue
		}
		if err := odb.replayRecord(r); err != nil {
			t.Fatalf("oracle replay of lsn %d: %v", r.LSN, err)
		}
	}
	return odb
}

// TestRecoveryTortureEveryBoundary is the kill-at-every-boundary matrix:
// the mixed workload runs once against a durable database, then for
// every record boundary — and for a torn cut inside every record — the
// log prefix is copied to a fresh directory and recovered, and the
// result is compared structurally against the committed-prefix oracle.
func TestRecoveryTortureEveryBoundary(t *testing.T) {
	base := t.TempDir()
	live := filepath.Join(base, "live")
	db, err := Open(Config{WALDir: live, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Record every epoch publication's LSN watermark: each one is an
	// extra kill point below (publishHook runs under the exclusive lock,
	// so the slice needs no further synchronization).
	var publishLSNs []uint64
	db.publishHook = func(lsn uint64) { publishLSNs = append(publishLSNs, lsn) }
	tortureWorkload(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(live, walFile)
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wal.Recover(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Records) == 0 {
		t.Fatalf("clean shutdown produced torn=%v records=%d", res.Torn, len(res.Records))
	}
	t.Logf("torture log: %d records, %d bytes", len(res.Records), len(logBytes))

	recoverAt := func(name string, cutLen int64, wantRecords int) {
		dir := filepath.Join(base, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), logBytes[:cutLen], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(Config{WALDir: dir, PageCap: 16})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", name, err)
		}
		defer rdb.Close()
		odb := oracleCommittedPrefix(t, res.Records[:wantRecords])
		got, want := logicalState(t, rdb), logicalState(t, odb)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recovered state diverges from committed-prefix oracle (%d records)\n got: %+v\nwant: %+v",
				name, wantRecords, got, want)
		}
	}

	// Crash exactly after each record (including the empty log), and
	// crash mid-record: the torn tail must be truncated and the state
	// must match the previous boundary.
	recoverAt("cut-0", 0, 0)
	for i := range res.Records {
		end := res.End
		if i+1 < len(res.Offsets) {
			end = res.Offsets[i+1]
		}
		recoverAt(fmt.Sprintf("cut-%d", i+1), end, i+1)
		mid := res.Offsets[i] + (end-res.Offsets[i])/2
		recoverAt(fmt.Sprintf("torn-%d", i+1), mid, i)
	}

	// Kill at every epoch publication: an epoch's LSN watermark must sit
	// exactly on a commit-record boundary (records — commit included —
	// are appended before the epoch publishes), and a crash at that
	// instant must recover exactly the state the epoch exposed. A
	// watermark inside a transaction's record run, or past the appended
	// log, would surface here as a missing record or a diverged state.
	lsnIndex := make(map[uint64]int, len(res.Records))
	for i, r := range res.Records {
		lsnIndex[r.LSN] = i
	}
	seen := map[uint64]bool{}
	published := 0
	for _, lsn := range publishLSNs {
		if lsn == 0 || seen[lsn] {
			continue // pre-WAL epoch, or a no-op republish at the same watermark
		}
		seen[lsn] = true
		i, ok := lsnIndex[lsn]
		if !ok {
			t.Errorf("published epoch watermark %d matches no log record", lsn)
			continue
		}
		if res.Records[i].Type != recCommit {
			t.Errorf("published epoch watermark %d is record type %d, want a commit record", lsn, res.Records[i].Type)
		}
		end := res.End
		if i+1 < len(res.Offsets) {
			end = res.Offsets[i+1]
		}
		recoverAt(fmt.Sprintf("publish-%d", lsn), end, i+1)
		published++
	}
	if published == 0 {
		t.Error("workload published no epochs with a WAL watermark")
	}
}

// TestReopenDurability is the basic end-to-end loop: mutate, close,
// reopen, and find the committed state again — twice, so recovery's own
// output recovers.
func TestReopenDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{WALDir: dir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	tortureWorkload(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var want *snapshot
	for round := 1; round <= 2; round++ {
		rdb, err := Open(Config{WALDir: dir, PageCap: 16})
		if err != nil {
			t.Fatalf("reopen %d: %v", round, err)
		}
		got := logicalState(t, rdb)
		if want == nil {
			want = got
			if n := len(got.Tables); n != 2 {
				t.Fatalf("reopen %d: %d tables, want 2", round, n)
			}
			// The rolled-back insert (Bird007) must not have survived.
			for _, st := range got.Tables {
				if st.Name != "Birds" {
					continue
				}
				for _, tu := range st.Tuples {
					if tu.Values[1].Text == "Bird007" {
						t.Errorf("rolled-back tuple survived recovery")
					}
				}
			}
		} else if !reflect.DeepEqual(got, want) {
			t.Errorf("reopen %d: state changed across a no-op restart", round)
		}
		if m := rdb.Metrics().WAL; m == nil {
			t.Errorf("reopen %d: durable database reports no WAL metrics", round)
		} else if m.RecoveryReplayedRecords == 0 {
			t.Errorf("reopen %d: expected replayed records, got 0", round)
		}
		if err := rdb.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointBoundsRecovery verifies checkpoints do their one job:
// after a checkpoint, recovery replays only the records logged since it,
// and the recovered state still matches the live state exactly.
func TestCheckpointBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{WALDir: dir, PageCap: 16, CheckpointEveryN: 5})
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := db.LinkInstance("Birds", "ClassBird1", false); err != nil {
		t.Fatal(err)
	}
	total := 40
	for i := 1; i <= total; i++ {
		oid, err := db.Insert("Birds", model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddAnnotation("Birds", oid, annText("Disease", i), nil, "tester"); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics().WAL
	if m == nil || m.Checkpoints == 0 {
		t.Fatalf("expected automatic checkpoints, metrics=%+v", m)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	want := logicalState(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rdb, err := Open(Config{WALDir: dir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got := logicalState(t, rdb); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges from pre-shutdown state")
	}
	rm := rdb.Metrics().WAL
	if rm == nil {
		t.Fatal("no WAL metrics after reopen")
	}
	// 2 ops per loop iteration; the checkpoint threshold is 5 logged
	// operations, so recovery must replay a bounded tail, not the 80+
	// record history.
	if rm.RecoveryReplayedRecords > 20 {
		t.Errorf("checkpoint did not bound recovery: replayed %d records", rm.RecoveryReplayedRecords)
	}
	// An explicit checkpoint right after recovery must succeed and reset
	// the replay debt to zero for the next open.
	if ok, err := rdb.Checkpoint(); err != nil || !ok {
		t.Fatalf("explicit checkpoint after recovery: ok=%v err=%v", ok, err)
	}
}

// TestWALGroupCommitRaceStress hammers a durable database with 16
// concurrent committers (mixed auto-commit and explicit transactions)
// and concurrent readers under a group-commit window, then recovers and
// checks the log reproduced the exact final state. Run with -race.
func TestWALGroupCommitRaceStress(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{WALDir: dir, PageCap: 16, GroupCommitWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 20
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i)
				name := fmt.Sprintf("W%02d-%03d", w, i)
				if w%2 == 0 {
					oid, err := db.Insert("Birds", model.NewInt(id), model.NewText(name))
					if err != nil {
						errCh <- err
						return
					}
					if _, err := db.AddAnnotation("Birds", oid, annText("Behavior", i), nil, name); err != nil {
						errCh <- err
						return
					}
				} else {
					tx := db.Begin()
					oid, err := tx.Insert("Birds", model.NewInt(id), model.NewText(name))
					if err != nil {
						errCh <- err
						return
					}
					if _, err := tx.AddAnnotation("Birds", oid, annText("Anatomy", i), nil, name); err != nil {
						errCh <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errCh <- err
						return
					}
				}
				if i%5 == 0 {
					if _, err := db.Query("SELECT name FROM Birds WITHOUT SUMMARIES", nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	m := db.Metrics().WAL
	if m == nil {
		t.Fatal("no WAL metrics")
	}
	if m.Fsyncs >= m.Commits && m.Commits > workers {
		t.Logf("group commit produced no amortization: fsyncs=%d commits=%d", m.Fsyncs, m.Commits)
	}
	want := logicalState(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rdb, err := Open(Config{WALDir: dir, PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got := logicalState(t, rdb); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges after concurrent commit stress")
	}
	tbl, err := rdb.Table("Birds")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != workers*perWorker {
		t.Errorf("recovered %d tuples, want %d", tbl.Len(), workers*perWorker)
	}
	if n := rdb.AnnotationCount(); n != workers*perWorker {
		t.Errorf("recovered %d annotations, want %d", n, workers*perWorker)
	}
}

// TestReadersNotBlockedByCommitWait verifies the group-commit wait
// happens outside the database lock: while a committer sits in its
// durability wait, a query must proceed and report the exact LSN horizon
// it observed.
func TestReadersNotBlockedByCommitWait(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{
		WALDir:            dir,
		PageCap:           16,
		GroupCommitWindow: 150 * time.Millisecond,
		WALSyncDelay:      20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := model.NewSchema("", model.Column{Name: "name", Kind: model.KindText})
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Insert("Birds", model.NewText("blocked-on-fsync"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the insert append and enter its wait
	start := time.Now()
	res, err := db.Query("SELECT name FROM Birds WITHOUT SUMMARIES", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("query blocked behind a commit wait: took %v", d)
	}
	if res.AsOfLSN == 0 {
		t.Errorf("durable query reported AsOfLSN=0")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWALOffUnchanged pins the compatibility contract: without a WALDir
// the DB reports no WAL metrics and renders the exact same metrics
// report as before durability existed.
func TestWALOffUnchanged(t *testing.T) {
	db := New(Config{PageCap: 16})
	if m := db.Metrics(); m.WAL != nil {
		t.Fatalf("WAL metrics present without a WAL: %+v", m.WAL)
	}
	if s := db.Metrics().String(); strings.Contains(s, "wal:") {
		t.Errorf("metrics report mentions wal without a WAL:\n%s", s)
	}
	res, err := Open(Config{PageCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.walLog() != nil {
		t.Errorf("Open without WALDir attached a log")
	}
}

// TestSaveFileAtomic covers the crash-safe snapshot path: SaveFile
// round-trips through Load, a failed SaveFile leaves the previous
// snapshot intact, and no temp debris survives.
func TestSaveFileAtomic(t *testing.T) {
	db, _ := testDB(t, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := loaded.Table("Birds")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 8 {
		t.Fatalf("loaded %d tuples, want 8", tbl.Len())
	}

	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A failing save (unwritable target directory) must not touch the
	// existing snapshot.
	if err := db.SaveFile(filepath.Join(dir, "missing", "db.snap")); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("failed SaveFile modified the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "db.snap" {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}
