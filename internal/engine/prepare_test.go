package engine

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// cachedTestDB is testDB with the plan cache enabled; the embedded API
// tests elsewhere run with PlanCacheSize 0 and never see any of this.
func cachedTestDB(t *testing.T, nBirds int) (*DB, []int64) {
	t.Helper()
	return testDBWithConfig(t, nBirds, Config{PageCap: 16, PlanCacheSize: 64})
}

func TestPrepareExecuteMatchesQuery(t *testing.T) {
	db, _ := cachedTestDB(t, 30)
	const q = `SELECT id FROM Birds r
	           WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", st.NumParams())
	}
	for _, want := range []int64{1, 2, 3} {
		lit := strings.Replace(q, "?", model.NewInt(want).SQLLiteral(), 1)
		classic, err := db.Query(lit, nil)
		if err != nil {
			t.Fatal(err)
		}
		prepared, err := st.Execute([]model.Value{model.NewInt(want)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(prepared.Rows) != len(classic.Rows) || len(classic.Rows) == 0 {
			t.Fatalf("param %d: prepared %d rows vs classic %d", want, len(prepared.Rows), len(classic.Rows))
		}
		seen := map[int64]bool{}
		for _, r := range classic.Rows {
			seen[r.Tuple.Values[0].Int] = true
		}
		for _, r := range prepared.Rows {
			if !seen[r.Tuple.Values[0].Int] {
				t.Fatalf("param %d: prepared returned extra id %d", want, r.Tuple.Values[0].Int)
			}
		}
	}
}

func TestPreparedPlanCacheHits(t *testing.T) {
	db, _ := cachedTestDB(t, 20)
	st, err := db.Prepare(`SELECT id FROM Birds r
	                       WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?`)
	if err != nil {
		t.Fatal(err)
	}
	params := []model.Value{model.NewInt(2)}
	first, err := st.Execute(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.CachedPlan {
		t.Fatal("first execution reported a cached plan")
	}
	second, err := st.Execute(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CachedPlan {
		t.Fatal("second execution with identical params missed the plan cache")
	}
	// A distinct constant is a distinct custom plan: its own slot.
	third, err := st.Execute([]model.Value{model.NewInt(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if third.CachedPlan {
		t.Fatal("different constant unexpectedly hit the cache")
	}
	stats := db.PlanCacheStats()
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", stats.Hits, stats.Misses)
	}
}

func TestQueryCachedReusesParsedStatement(t *testing.T) {
	db, _ := cachedTestDB(t, 15)
	const q = `SELECT id FROM Birds WHERE family = ?`
	p := []model.Value{model.NewText("Corvidae")}
	first, err := db.QueryCached(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same text modulo case/whitespace shares the statement and the plan.
	second, err := db.QueryCached("select  id  from Birds where family = ?", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 || len(first.Rows) != len(second.Rows) {
		t.Fatalf("rows %d vs %d", len(first.Rows), len(second.Rows))
	}
	if !second.CachedPlan {
		t.Fatal("normalized repeat missed the plan cache")
	}
}

func TestPrepareRejectsNonSelectAndArity(t *testing.T) {
	db, _ := cachedTestDB(t, 5)
	if _, err := db.Prepare("ALTER TABLE Birds ADD ClassBird1"); err == nil {
		t.Fatal("Prepare accepted DDL")
	}
	st, err := db.Prepare(`SELECT id FROM Birds WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(nil, nil); err == nil {
		t.Fatal("Execute accepted zero params for a 1-param statement")
	}
	if _, err := st.Execute([]model.Value{model.NewInt(1), model.NewInt(2)}, nil); err == nil {
		t.Fatal("Execute accepted two params for a 1-param statement")
	}
	// An unbound placeholder must be rejected by planning, not crash it.
	if _, err := db.Query(`SELECT id FROM Birds WHERE id = ?`, nil); err == nil {
		t.Fatal("classic Query accepted an unbound placeholder")
	}
}

// TestPlanCacheStalenessOnIndexCreation is the staleness trap from the
// issue: a plan cached before CREATE SUMMARY INDEX chose a sequential
// scan; creating the index bumps the catalog version, so the next
// execution must re-plan onto the index rather than replay the stale
// skeleton.
func TestPlanCacheStalenessOnIndexCreation(t *testing.T) {
	db, _ := cachedTestDB(t, 40)
	st, err := db.Prepare(`SELECT id FROM Birds r
	                       WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?`)
	if err != nil {
		t.Fatal(err)
	}
	params := []model.Value{model.NewInt(2)}
	pre, err := st.Execute(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(pre.Plan), "SummaryBTreeScan") {
		t.Fatalf("plan uses an index before one exists:\n%s", plan.Explain(pre.Plan))
	}
	if res, err := st.Execute(params, nil); err != nil || !res.CachedPlan {
		t.Fatalf("warm execution: cached=%v err=%v", res != nil && res.CachedPlan, err)
	}

	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}

	post, err := st.Execute(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if post.CachedPlan {
		t.Fatal("stale pre-index plan survived CREATE SUMMARY INDEX")
	}
	if !strings.Contains(plan.Explain(post.Plan), "SummaryBTreeScan") {
		t.Fatalf("re-planned query does not use the new index:\n%s", plan.Explain(post.Plan))
	}
	if len(post.Rows) != len(pre.Rows) {
		t.Fatalf("index plan returned %d rows, seq scan returned %d", len(post.Rows), len(pre.Rows))
	}
	if inv := db.PlanCacheStats().Invalidations; inv < 1 {
		t.Fatalf("invalidations = %d, want >= 1", inv)
	}
}

// TestPlanCacheStalenessOnStatsRefresh covers the DDL-free half of the
// trap: RefreshStatistics must also invalidate cached plans.
func TestPlanCacheStalenessOnStatsRefresh(t *testing.T) {
	db, _ := cachedTestDB(t, 10)
	st, err := db.Prepare(`SELECT id FROM Birds WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	params := []model.Value{model.NewInt(3)}
	if _, err := st.Execute(params, nil); err != nil {
		t.Fatal(err)
	}
	if res, _ := st.Execute(params, nil); !res.CachedPlan {
		t.Fatal("warm execution missed the cache")
	}
	before := db.CatalogVersion()
	db.RefreshStatistics()
	if db.CatalogVersion() != before+1 {
		t.Fatalf("RefreshStatistics did not bump the catalog version")
	}
	res, err := st.Execute(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedPlan {
		t.Fatal("cached plan survived a statistics refresh")
	}
}

// TestIngestFlusherJoinedOnClose is the lifecycle regression from the
// issue: Close must join the IngestFlushInterval ticker goroutine, not
// merely signal it. Before the done-channel join the goroutine could
// still be inside flushIfDirty when Close returned.
func TestIngestFlusherJoinedOnClose(t *testing.T) {
	db, oids := testDBWithConfig(t, 8, Config{
		PageCap:             16,
		IngestFlushOps:      1000, // interval, not threshold, drives flushes
		IngestFlushInterval: time.Millisecond,
	})
	if db.ingestDone == nil {
		t.Fatal("New with IngestFlushInterval did not start the flusher")
	}
	mustAnnotate(t, db, oids[0], annText("Disease", 99))
	db.Close()
	select {
	case <-db.ingestDone:
	default:
		t.Fatal("Close returned without joining the ingest flusher goroutine")
	}
	// Close is idempotent with the flusher already torn down.
	db.Close()
}

// TestLoadStartsIngestFlusher: a snapshot-loaded DB silently ignored
// IngestFlushInterval before the LoadWithConfig fix.
func TestLoadStartsIngestFlusher(t *testing.T) {
	src, _ := testDB(t, 6)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := LoadWithConfig(&buf, Config{
		IngestFlushOps:      1000,
		IngestFlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.ingestDone == nil {
		t.Fatal("LoadWithConfig did not start the interval flusher")
	}
	oid, err := db.Insert("Birds",
		model.NewInt(1000), model.NewText("Late"), model.NewText("Anatidae"))
	if err != nil {
		t.Fatal(err)
	}
	mustAnnotate(t, db, oid, annText("Disease", 0))
	// The timer alone must drain the buffer — no read or explicit flush.
	deadline := time.Now().Add(5 * time.Second)
	for db.ingestDirty.Load() {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never drained the buffer")
		}
		time.Sleep(time.Millisecond)
	}
	db.Close()
	select {
	case <-db.ingestDone:
	default:
		t.Fatal("Close returned without joining the Load-started flusher")
	}
}

// TestIngestFlusherOpenCloseStress opens and closes interval-flushing
// databases in a tight loop while annotating; under -race this flushes
// out any flush racing the teardown.
func TestIngestFlusherOpenCloseStress(t *testing.T) {
	for i := 0; i < 20; i++ {
		db, oids := testDBWithConfig(t, 4, Config{
			PageCap:             16,
			IngestFlushOps:      1000,
			IngestFlushInterval: 100 * time.Microsecond,
		})
		for j := 0; j < 5; j++ {
			mustAnnotate(t, db, oids[j%len(oids)], annText("Behavior", j))
		}
		db.Close()
		select {
		case <-db.ingestDone:
		default:
			t.Fatalf("iteration %d: flusher not joined", i)
		}
	}
}

// TestMetricsSnapshotConsistency is the torn-snapshot regression:
// Metrics taken while 8 goroutines record concurrently must satisfy
// sum(LatencyCounts) == Queries on every snapshot (previously a reader
// could observe a statement's histogram bucket without its query count,
// or vice versa).
func TestMetricsSnapshotConsistency(t *testing.T) {
	db, _ := cachedTestDB(t, 12)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			params := []model.Value{model.NewInt(int64(g%3 + 1))}
			for !stop.Load() {
				if _, err := db.QueryCached(
					`SELECT id FROM Birds r
					 WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?`,
					params, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		m := db.Metrics()
		var sum int64
		for _, c := range m.LatencyCounts {
			sum += c
		}
		if sum != m.Queries {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("torn snapshot: histogram sums to %d, Queries = %d", sum, m.Queries)
		}
		snaps++
	}
	stop.Store(true)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots taken")
	}
	// Final quiesced snapshot agrees with itself too.
	m := db.Metrics()
	var sum int64
	for _, c := range m.LatencyCounts {
		sum += c
	}
	if sum != m.Queries || m.Queries == 0 {
		t.Fatalf("final snapshot: sum=%d queries=%d", sum, m.Queries)
	}
	if m.PlanCache == nil || m.PlanCache.Hits == 0 {
		t.Fatalf("plan cache saw no hits under the hammer: %+v", m.PlanCache)
	}
}

// TestPreparedConcurrentExecutions: one Stmt shared by many goroutines
// with distinct params; results must match the classic path throughout.
func TestPreparedConcurrentExecutions(t *testing.T) {
	db, _ := cachedTestDB(t, 25)
	st, err := db.Prepare(`SELECT id FROM Birds r
	                       WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int{}
	for d := int64(1); d <= 4; d++ {
		res, err := db.Query(strings.Replace(st.Text(), "?", model.NewInt(d).SQLLiteral(), 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[d] = len(res.Rows)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				d := int64((g+i)%4 + 1)
				res, err := st.Execute([]model.Value{model.NewInt(d)}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != want[d] {
					t.Errorf("param %d: got %d rows, want %d", d, len(res.Rows), want[d])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanCacheDisabledPathsUnchanged: with PlanCacheSize 0 the
// prepared API still works (through the classic path) and the metrics
// carry no plan-cache section — cache-off snapshots are unchanged.
func TestPlanCacheDisabledPathsUnchanged(t *testing.T) {
	db, _ := testDB(t, 10)
	st, err := db.Prepare(`SELECT id FROM Birds WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Execute([]model.Value{model.NewInt(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedPlan {
		t.Fatal("CachedPlan set with caching disabled")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if m := db.Metrics(); m.PlanCache != nil {
		t.Fatal("cache-off Metrics grew a PlanCache section")
	}
	var zero optimizer.PlanCacheStats
	if db.PlanCacheStats() != zero {
		t.Fatal("PlanCacheStats not zero with caching disabled")
	}
}
