package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/pager"
	"repro/internal/sql"
)

// AnalyzedPlan is the output of EXPLAIN ANALYZE: the query's result plus
// the optimized plan tree annotated with cost-model estimates and the
// per-operator runtime stats recorded during this execution.
type AnalyzedPlan struct {
	// Result is the executed query's full output (EXPLAIN ANALYZE runs
	// the statement for real).
	Result *Result
	// Root is the annotated plan tree (estimates + actuals per node).
	Root *optimizer.AnalyzedNode
	// Wall is the end-to-end statement time: parse-to-last-row, including
	// planning.
	Wall time.Duration
	// IO is the whole-statement page/node delta on the shared accountant.
	// Under concurrent queries it may include a neighbor's traffic — the
	// accountant is engine-wide, as are the per-operator deltas.
	IO pager.Stats
}

// String renders the annotated plan tree followed by an execution
// footer, in the spirit of Postgres's EXPLAIN ANALYZE output.
func (p *AnalyzedPlan) String() string {
	footer := fmt.Sprintf("Execution: rows=%d time=%s io=%s",
		len(p.Result.Rows), p.Wall.Round(time.Microsecond), p.IO)
	if p.IO.CacheAccesses() > 0 {
		footer += " cache=" + p.IO.CacheString()
	}
	return p.Root.String() + footer + "\n"
}

// ExplainAnalyze executes one SELECT with per-operator instrumentation
// and returns the annotated plan. Equivalent to ExplainAnalyzeContext
// with context.Background().
func (db *DB) ExplainAnalyze(query string, opts *optimizer.Options) (*AnalyzedPlan, error) {
	return db.ExplainAnalyzeContext(context.Background(), query, opts)
}

// ExplainAnalyzeContext parses, plans, and EXECUTES the statement with a
// stats collector attached: every compiled operator is wrapped in a
// recorder measuring rows, Next calls, wall time, accountant I/O deltas,
// and buffering/spill charges. The plain query path pays none of this —
// recorders exist only when a collector is installed. Cancellation,
// statement timeouts, budgets, and fault isolation behave exactly as in
// QueryContext.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, query string, opts *optimizer.Options) (*AnalyzedPlan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN ANALYZE expects SELECT, got %T", stmt)
	}
	ctx, cancel := db.applyTimeout(ctx)
	defer cancel()

	var o optimizer.Options
	if opts != nil {
		o = *opts
	}
	o.Collector = exec.NewStatsCollector(db.acct)

	start := time.Now()
	db.flushIfDirty()
	ep, s, err := db.pinEpoch()
	if err != nil {
		return nil, err
	}
	io0 := db.acct.Stats()
	res, resolver, err := db.runSelectResolved(ctx, ep, sel, &o)
	io1 := db.acct.Stats()
	var root *optimizer.AnalyzedNode
	if err == nil {
		root = optimizer.Annotate(res.Plan, resolver, ep.optimizerEnv(sel.Propagate), o)
	}
	db.clock.Unpin(s)
	wall := time.Since(start)

	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	db.metrics.record(wall, rows, err)
	if err != nil {
		return nil, err
	}
	return &AnalyzedPlan{Result: res, Root: root, Wall: wall, IO: io1.Sub(io0)}, nil
}
