package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
)

// The acceptance scenario: EXPLAIN ANALYZE on a summary-predicate query
// renders every operator with its cost-model estimate next to the
// measured rows, Next calls, wall time, and page/node I/O.
func TestExplainAnalyzeSummaryPredicate(t *testing.T) {
	db, _ := testDB(t, 40)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id, name FROM Birds r
	      WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
	      ORDER BY name`
	ap, err := db.ExplainAnalyze(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Result.Rows) == 0 || len(ap.Result.Rows) != len(plain.Rows) {
		t.Fatalf("analyzed run returned %d rows, plain run %d", len(ap.Result.Rows), len(plain.Rows))
	}

	out := ap.String()
	for _, want := range []string{
		"est rows=", "actual rows=", "nexts=", "time=", "io self=", "Execution: rows=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	// Root actuals match the result; the whole tree executed.
	if ap.Root.Stats == nil {
		t.Fatalf("root has no runtime stats:\n%s", out)
	}
	if got := ap.Root.Stats.Rows; got != int64(len(ap.Result.Rows)) {
		t.Errorf("root actual rows = %d, result has %d", got, len(ap.Result.Rows))
	}
	executed := 0
	ap.Root.Walk(func(n *optimizer.AnalyzedNode) {
		if n.Stats != nil {
			executed++
			if n.Stats.NextCalls < n.Stats.Rows {
				t.Errorf("%s: %d Next calls produced %d rows",
					n.Node.Describe(), n.Stats.NextCalls, n.Stats.Rows)
			}
		}
	})
	if executed < 2 {
		t.Errorf("only %d executed operators annotated:\n%s", executed, out)
	}
	if ap.Wall <= 0 {
		t.Errorf("non-positive wall time %v", ap.Wall)
	}
	if ap.IO.PageReads <= 0 {
		t.Errorf("statement-level I/O delta empty: %+v", ap.IO)
	}
	// The predicate took the index path, and the index probe surfaced
	// B-Tree node accesses in its operator line.
	if !strings.Contains(out, "SummaryBTreeScan") {
		t.Fatalf("plan does not use the summary index:\n%s", out)
	}
	sawNodes := false
	ap.Root.Walk(func(n *optimizer.AnalyzedNode) {
		if n.Stats != nil && n.Stats.IO.NodeAccesses() > 0 {
			sawNodes = true
		}
	})
	if !sawNodes {
		t.Errorf("no operator recorded B-Tree node accesses:\n%s", out)
	}
}

// The instrumented run must return exactly what the plain run returns —
// the recorders are transparent decorators.
func TestExplainAnalyzeMatchesPlainQuery(t *testing.T) {
	db, _ := testDB(t, 25)
	for _, q := range []string{
		`SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
		`SELECT family FROM Birds b GROUP BY family`,
		`SELECT DISTINCT family FROM Birds b ORDER BY family`,
		`SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family LIMIT 10`,
	} {
		ap, err := db.ExplainAnalyze(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		plain, err := db.Query(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(ap.Result.Rows) != len(plain.Rows) {
			t.Errorf("%s: analyzed %d rows, plain %d", q, len(ap.Result.Rows), len(plain.Rows))
		}
	}
}

func TestExplainAnalyzeRejectsNonSelect(t *testing.T) {
	db, _ := testDB(t, 5)
	if _, err := db.ExplainAnalyze(`ALTER TABLE Birds DROP ClassBird1`, nil); err == nil {
		t.Fatal("expected error for non-SELECT statement")
	}
}

func TestMetricsCounters(t *testing.T) {
	db, _ := testDB(t, 20)
	base := db.Metrics()

	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT id FROM Birds b`, nil); err != nil {
			t.Fatal(err)
		}
	}
	// One cancellation (pre-cancelled context)...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, slowJoinQuery, nil); err == nil {
		t.Fatal("pre-cancelled query succeeded")
	}
	// ...and one budget violation.
	tight := &optimizer.Options{Budget: exec.NewBudget(5, 0, 0)}
	if _, err := db.Query(`SELECT DISTINCT id FROM Birds`, tight); err == nil {
		t.Fatal("tight-budget query succeeded")
	}
	// EXPLAIN ANALYZE statements count as queries too.
	if _, err := db.ExplainAnalyze(`SELECT id FROM Birds b`, nil); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics()
	if got := m.Queries - base.Queries; got != 6 {
		t.Errorf("queries delta = %d, want 6", got)
	}
	if got := m.RowsReturned - base.RowsReturned; got != 4*20 {
		t.Errorf("rows delta = %d, want 80", got)
	}
	if got := m.Failures - base.Failures; got != 2 {
		t.Errorf("failures delta = %d, want 2", got)
	}
	if got := m.Cancellations - base.Cancellations; got != 1 {
		t.Errorf("cancellations delta = %d, want 1", got)
	}
	if got := m.BudgetFailures - base.BudgetFailures; got != 1 {
		t.Errorf("budget failures delta = %d, want 1", got)
	}
	var bucketSum int64
	for _, c := range m.LatencyCounts {
		bucketSum += c
	}
	if bucketSum != m.Queries {
		t.Errorf("latency buckets sum to %d, queries = %d", bucketSum, m.Queries)
	}
	if len(m.LatencyCounts) != len(m.LatencyBounds)+1 {
		t.Errorf("bucket shape: %d counts for %d bounds", len(m.LatencyCounts), len(m.LatencyBounds))
	}
	if m.TotalQueryTime <= 0 {
		t.Errorf("non-positive total query time %v", m.TotalQueryTime)
	}
	if m.IO.PageReads <= 0 {
		t.Errorf("metrics snapshot missing accountant I/O: %+v", m.IO)
	}
	for _, want := range []string{"queries=", "latency:", "io:"} {
		if !strings.Contains(m.String(), want) {
			t.Errorf("Metrics.String missing %q:\n%s", want, m.String())
		}
	}
}
