package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/mining/bayes"
	"repro/internal/model"
	"repro/internal/pager"
)

// The snapshot format is a LOGICAL dump: schemas, instance definitions,
// trained classifier models, tuples, raw annotations with their
// attachments, and index declarations. Load replays it through the
// normal engine paths — inserts, AddAnnotation, index creation — so
// summaries, statistics, and indexes are re-derived exactly (every
// mining component is deterministic given the replayed order). This
// keeps the on-disk format independent of internal storage layouts.

type snapshotInstance struct {
	Def             catalog.SummaryInstance
	ClassifierState *bayes.State // nil for non-classifier instances
}

type snapshotColumnDef struct {
	Name string
	Kind model.Kind
}

type snapshotTuple struct {
	OID    int64
	Values []model.Value
}

type snapshotTable struct {
	Name        string
	Columns     []snapshotColumnDef
	Tuples      []snapshotTuple
	Instances   []string // linked instance names
	SummaryIdx  []string // instances with a Summary-BTree
	BaselineIdx []string // instances with a baseline index
	DataIdx     []string // data-indexed columns
}

type snapshotAnnotation struct {
	Text     string
	TupleOID int64 // primary attachment (old OID)
	Columns  []string
	Author   string
	Seq      int64
	// Extra lists additional tuple attachments (old OIDs).
	Extra []int64
	// ID is the annotation's original ID, used by the preserve-ID
	// checkpoint replay path; the portable Load path reassigns IDs.
	ID int64
}

type snapshot struct {
	Version     int
	Instances   []snapshotInstance
	Tables      []snapshotTable
	Annotations []snapshotAnnotation // in Seq order
	PageCap     int

	// Durability extensions, consumed only by the checkpoint path (gob
	// tolerates their absence when decoding pre-WAL dumps). A checkpoint
	// must restore exact identifier assignment — including gaps left by
	// uncommitted operations — so WAL records replayed on top line up
	// with the run that logged them.
	WalLSN     uint64 // log position the checkpoint captures
	NextOID    int64  // catalog OID watermark
	NextAnnID  int64  // annotation ID watermark
	NextAnnSeq int64  // annotation logical-timestamp watermark
}

// Save writes a logical snapshot of the database. The companion Load
// reconstructs an equivalent database (same schemas, tuples, summaries,
// statistics, and indexes; OIDs and annotation IDs are reassigned
// deterministically).
//
// The snapshot is assembled in memory under SnapshotRetry, so transient
// storage faults during the table/annotation scans are retried with
// backoff; only then is the result encoded to w in one pass (a writer
// cannot be rewound, so encoding is never retried).
func (db *DB) Save(w io.Writer) error {
	db.flushIfDirty()
	db.mu.RLock()
	defer db.mu.RUnlock()
	var snap *snapshot
	err := withRetry(SnapshotRetry, func() error {
		var berr error
		snap, berr = db.buildSnapshot()
		return berr
	})
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(snap)
}

// buildSnapshot assembles the logical dump (callers hold the shared
// lock). Its heap scans charge pager reads, so it may fail — or panic
// *pager.FaultError — under fault injection; withRetry absorbs both.
func (db *DB) buildSnapshot() (*snapshot, error) {
	snap := snapshot{Version: 1, PageCap: db.pageCap()}
	snap.NextOID = db.cat.NextOID()
	snap.NextAnnID, snap.NextAnnSeq = db.cat.Anns.Counters()

	// Instance registry, sorted for determinism.
	var instNames []string
	for name := range db.instances {
		instNames = append(instNames, name)
	}
	sort.Strings(instNames)
	for _, name := range instNames {
		si := db.instances[name]
		entry := snapshotInstance{Def: *si}
		if clf := db.classifiers[name]; clf != nil {
			entry.ClassifierState = clf.State()
		}
		snap.Instances = append(snap.Instances, entry)
	}

	// Tables.
	primaryOwner := map[int64]bool{} // old OIDs present in the dump
	for _, name := range db.cat.TableNames() {
		t, err := db.cat.Table(name)
		if err != nil {
			return nil, err
		}
		st := snapshotTable{Name: t.Name, DataIdx: t.DataIndexedColumns()}
		for _, c := range t.Schema.Columns {
			st.Columns = append(st.Columns, snapshotColumnDef{Name: c.Name, Kind: c.Kind})
		}
		t.Scan(func(_ heap.RID, tu *model.Tuple) bool {
			st.Tuples = append(st.Tuples, snapshotTuple{OID: tu.OID,
				Values: append([]model.Value(nil), tu.Values...)})
			primaryOwner[tu.OID] = true
			return true
		})
		sort.Slice(st.Tuples, func(i, j int) bool { return st.Tuples[i].OID < st.Tuples[j].OID })
		for _, si := range t.Instances {
			st.Instances = append(st.Instances, si.Name)
			if db.summaryIndex(t.Name, si.Name) != nil {
				st.SummaryIdx = append(st.SummaryIdx, si.Name)
			}
			if db.baselineIndex(t.Name, si.Name) != nil {
				st.BaselineIdx = append(st.BaselineIdx, si.Name)
			}
		}
		snap.Tables = append(snap.Tables, st)
	}

	// Annotations in Seq order, with extra attachments discovered by
	// scanning every tuple's attachment list.
	attachedTo := map[int64][]int64{} // annID -> tuple OIDs beyond the primary
	for _, st := range snap.Tables {
		for _, tu := range st.Tuples {
			for _, a := range db.cat.Anns.ForTuple(tu.OID) {
				if a.TupleOID != tu.OID {
					attachedTo[a.ID] = append(attachedTo[a.ID], tu.OID)
				}
			}
		}
	}
	var anns []*model.Annotation
	db.cat.Anns.All(func(a *model.Annotation) bool {
		anns = append(anns, a)
		return true
	})
	sort.Slice(anns, func(i, j int) bool { return anns[i].Seq < anns[j].Seq })
	for _, a := range anns {
		if !primaryOwner[a.TupleOID] {
			continue // orphan (its tuple was deleted); drop
		}
		extra := append([]int64(nil), attachedTo[a.ID]...)
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		snap.Annotations = append(snap.Annotations, snapshotAnnotation{
			Text: a.Text, TupleOID: a.TupleOID,
			Columns: append([]string(nil), a.Columns...),
			Author:  a.Author, Seq: a.Seq, Extra: extra, ID: a.ID,
		})
	}

	return &snap, nil
}

// pageCap recovers the configured records-per-page parameter.
func (db *DB) pageCap() int {
	for _, name := range db.cat.TableNames() {
		if t, err := db.cat.Table(name); err == nil {
			return t.Data.PageCap()
		}
	}
	return 0
}

// Load reconstructs a database from a snapshot produced by Save.
func Load(r io.Reader) (*DB, error) {
	return LoadWithConfig(r, Config{})
}

// LoadWithConfig is Load with an explicit configuration for the
// reconstructed database (statement timeout, default budget, fault
// policy; PageCap comes from the snapshot itself).
//
// Replay runs under SnapshotRetry: a transient storage fault discards
// the half-built database and replays the decoded snapshot from
// scratch. All attempts share one pager accountant, so fault-injection
// state (FailFirstWrites windows in particular) progresses across
// attempts instead of re-arming each try.
func LoadWithConfig(r io.Reader, cfg Config) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d", snap.Version)
	}
	cfg.PageCap = snap.PageCap
	acct := &pager.Accountant{}
	if cfg.Faults != nil {
		acct.SetFaultPolicy(cfg.Faults)
	}
	var db *DB
	err := withRetry(SnapshotRetry, func() error {
		db = newDB(cfg, acct)
		return db.replaySnapshot(&snap)
	})
	if err != nil {
		return nil, err
	}
	// Start the interval flusher only once replay has succeeded (retries
	// rebuild the DB; a timer on a discarded attempt would leak). Before
	// this call a snapshot-loaded database silently ignored
	// IngestFlushInterval.
	db.startIngestFlusher(cfg.IngestFlushInterval)
	return db, nil
}

// replaySnapshot rebuilds state through the normal engine paths.
func (db *DB) replaySnapshot(snap *snapshot) error {
	// Instances and classifier models.
	for i := range snap.Instances {
		def := snap.Instances[i].Def
		if err := db.registerInstance(&def); err != nil {
			return err
		}
		if st := snap.Instances[i].ClassifierState; st != nil {
			db.classifiers[strings.ToLower(def.Name)] = bayes.FromState(st)
		}
	}

	// Tables, tuples (recording old->new OIDs), and instance links.
	oidMap := map[int64]int64{}
	tableOf := map[int64]string{} // old OID -> table name
	for _, st := range snap.Tables {
		cols := make([]model.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = model.Column{Name: c.Name, Kind: c.Kind}
		}
		if _, err := db.CreateTable(st.Name, model.NewSchema("", cols...)); err != nil {
			return err
		}
		for _, inst := range st.Instances {
			if err := db.LinkInstance(st.Name, inst, false); err != nil {
				return err
			}
		}
		for _, tu := range st.Tuples {
			newOID, err := db.Insert(st.Name, tu.Values...)
			if err != nil {
				return err
			}
			oidMap[tu.OID] = newOID
			tableOf[tu.OID] = st.Name
		}
	}

	// Replay annotations in original Seq order: summarization re-derives
	// every summary object and statistic.
	for _, a := range snap.Annotations {
		table := tableOf[a.TupleOID]
		if table == "" {
			continue
		}
		ann, err := db.AddAnnotation(table, oidMap[a.TupleOID], a.Text, a.Columns, a.Author)
		if err != nil {
			return err
		}
		for _, oldOID := range a.Extra {
			if t2 := tableOf[oldOID]; t2 != "" {
				if err := db.AttachAnnotation(t2, oidMap[oldOID], ann.ID); err != nil {
					return err
				}
			}
		}
	}

	// Indexes last (bulk creation over the replayed summaries).
	for _, st := range snap.Tables {
		for _, col := range st.DataIdx {
			if err := db.CreateDataIndex(st.Name, col); err != nil {
				return err
			}
		}
		for _, inst := range st.SummaryIdx {
			if err := db.CreateSummaryIndex(st.Name, inst); err != nil {
				return err
			}
		}
		for _, inst := range st.BaselineIdx {
			if err := db.CreateBaselineIndex(st.Name, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

// replaySnapshotPreserveIDs rebuilds state from a checkpoint through the
// forced-ID apply paths, so OIDs, annotation IDs, and logical timestamps
// come back exactly as the logged run assigned them — WAL records
// replayed on top then reference the same identifiers they were logged
// against. The watermarks are restored last so gaps left by uncommitted
// operations survive the round trip.
func (db *DB) replaySnapshotPreserveIDs(snap *snapshot) error {
	for i := range snap.Instances {
		if err := db.applyDefineInstance(&snap.Instances[i]); err != nil {
			return err
		}
	}

	tableOf := map[int64]string{} // OID -> table name
	for _, st := range snap.Tables {
		cols := make([]model.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = model.Column{Name: c.Name, Kind: c.Kind}
		}
		t, err := db.cat.CreateTable(st.Name, model.NewSchema("", cols...))
		if err != nil {
			return err
		}
		for _, inst := range st.Instances {
			if err := db.applyLinkInstance(st.Name, inst, false); err != nil {
				return err
			}
		}
		for _, tu := range st.Tuples {
			if _, err := t.InsertWithOID(tu.OID, tu.Values); err != nil {
				return err
			}
			tableOf[tu.OID] = st.Name
		}
	}

	for _, a := range snap.Annotations {
		table := tableOf[a.TupleOID]
		if table == "" {
			continue
		}
		if _, err := db.applyAddAnnotation(table, a.TupleOID, a.ID, a.Seq, a.Text, a.Columns, a.Author); err != nil {
			return err
		}
		for _, oid := range a.Extra {
			if t2 := tableOf[oid]; t2 != "" {
				if err := db.applyAttachAnnotation(t2, oid, a.ID); err != nil {
					return err
				}
			}
		}
	}

	for _, st := range snap.Tables {
		for _, col := range st.DataIdx {
			if err := db.applyCreateDataIndex(st.Name, col); err != nil {
				return err
			}
		}
		for _, inst := range st.SummaryIdx {
			if err := db.createSummaryIndex(st.Name, inst); err != nil {
				return err
			}
		}
		for _, inst := range st.BaselineIdx {
			if err := db.createBaselineIndex(st.Name, inst); err != nil {
				return err
			}
		}
	}

	db.cat.SetNextOID(snap.NextOID)
	db.cat.Anns.SetCounters(snap.NextAnnID, snap.NextAnnSeq)
	return nil
}

// writeSnapshotAtomic encodes snap to path crash-safely: the bytes go to
// a temp file in the same directory, are fsynced, and only then renamed
// over the destination, so a crash at any point leaves either the old
// complete file or the new complete file — never a torn mix. The
// directory is fsynced after the rename so the new name itself survives.
func writeSnapshotAtomic(path string, snap *snapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: snapshot temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		return fail(fmt.Errorf("engine: encoding snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("engine: syncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("engine: closing snapshot: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: publishing snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveFile writes a logical snapshot to path crash-safely (temp file +
// fsync + rename): a crash mid-save leaves any previous snapshot at path
// intact rather than a truncated dump.
func (db *DB) SaveFile(path string) error {
	db.flushIfDirty()
	db.mu.RLock()
	defer db.mu.RUnlock()
	var snap *snapshot
	err := withRetry(SnapshotRetry, func() error {
		var berr error
		snap, berr = db.buildSnapshot()
		return berr
	})
	if err != nil {
		return err
	}
	return writeSnapshotAtomic(path, snap)
}
