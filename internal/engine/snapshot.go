package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/mining/bayes"
	"repro/internal/model"
	"repro/internal/pager"
)

// The snapshot format is a LOGICAL dump: schemas, instance definitions,
// trained classifier models, tuples, raw annotations with their
// attachments, and index declarations. Load replays it through the
// normal engine paths — inserts, AddAnnotation, index creation — so
// summaries, statistics, and indexes are re-derived exactly (every
// mining component is deterministic given the replayed order). This
// keeps the on-disk format independent of internal storage layouts.

type snapshotInstance struct {
	Def             catalog.SummaryInstance
	ClassifierState *bayes.State // nil for non-classifier instances
}

type snapshotColumnDef struct {
	Name string
	Kind model.Kind
}

type snapshotTuple struct {
	OID    int64
	Values []model.Value
}

type snapshotTable struct {
	Name        string
	Columns     []snapshotColumnDef
	Tuples      []snapshotTuple
	Instances   []string // linked instance names
	SummaryIdx  []string // instances with a Summary-BTree
	BaselineIdx []string // instances with a baseline index
	DataIdx     []string // data-indexed columns
}

type snapshotAnnotation struct {
	Text     string
	TupleOID int64 // primary attachment (old OID)
	Columns  []string
	Author   string
	Seq      int64
	// Extra lists additional tuple attachments (old OIDs).
	Extra []int64
}

type snapshot struct {
	Version     int
	Instances   []snapshotInstance
	Tables      []snapshotTable
	Annotations []snapshotAnnotation // in Seq order
	PageCap     int
}

// Save writes a logical snapshot of the database. The companion Load
// reconstructs an equivalent database (same schemas, tuples, summaries,
// statistics, and indexes; OIDs and annotation IDs are reassigned
// deterministically).
//
// The snapshot is assembled in memory under SnapshotRetry, so transient
// storage faults during the table/annotation scans are retried with
// backoff; only then is the result encoded to w in one pass (a writer
// cannot be rewound, so encoding is never retried).
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var snap *snapshot
	err := withRetry(SnapshotRetry, func() error {
		var berr error
		snap, berr = db.buildSnapshot()
		return berr
	})
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(snap)
}

// buildSnapshot assembles the logical dump (callers hold the shared
// lock). Its heap scans charge pager reads, so it may fail — or panic
// *pager.FaultError — under fault injection; withRetry absorbs both.
func (db *DB) buildSnapshot() (*snapshot, error) {
	snap := snapshot{Version: 1, PageCap: db.pageCap()}

	// Instance registry, sorted for determinism.
	var instNames []string
	for name := range db.instances {
		instNames = append(instNames, name)
	}
	sort.Strings(instNames)
	for _, name := range instNames {
		si := db.instances[name]
		entry := snapshotInstance{Def: *si}
		if clf := db.classifiers[name]; clf != nil {
			entry.ClassifierState = clf.State()
		}
		snap.Instances = append(snap.Instances, entry)
	}

	// Tables.
	primaryOwner := map[int64]bool{} // old OIDs present in the dump
	for _, name := range db.cat.TableNames() {
		t, err := db.cat.Table(name)
		if err != nil {
			return nil, err
		}
		st := snapshotTable{Name: t.Name, DataIdx: t.DataIndexedColumns()}
		for _, c := range t.Schema.Columns {
			st.Columns = append(st.Columns, snapshotColumnDef{Name: c.Name, Kind: c.Kind})
		}
		t.Scan(func(_ heap.RID, tu *model.Tuple) bool {
			st.Tuples = append(st.Tuples, snapshotTuple{OID: tu.OID,
				Values: append([]model.Value(nil), tu.Values...)})
			primaryOwner[tu.OID] = true
			return true
		})
		sort.Slice(st.Tuples, func(i, j int) bool { return st.Tuples[i].OID < st.Tuples[j].OID })
		for _, si := range t.Instances {
			st.Instances = append(st.Instances, si.Name)
			if db.summaryIndex(t.Name, si.Name) != nil {
				st.SummaryIdx = append(st.SummaryIdx, si.Name)
			}
			if db.baselineIndex(t.Name, si.Name) != nil {
				st.BaselineIdx = append(st.BaselineIdx, si.Name)
			}
		}
		snap.Tables = append(snap.Tables, st)
	}

	// Annotations in Seq order, with extra attachments discovered by
	// scanning every tuple's attachment list.
	attachedTo := map[int64][]int64{} // annID -> tuple OIDs beyond the primary
	for _, st := range snap.Tables {
		for _, tu := range st.Tuples {
			for _, a := range db.cat.Anns.ForTuple(tu.OID) {
				if a.TupleOID != tu.OID {
					attachedTo[a.ID] = append(attachedTo[a.ID], tu.OID)
				}
			}
		}
	}
	var anns []*model.Annotation
	db.cat.Anns.All(func(a *model.Annotation) bool {
		anns = append(anns, a)
		return true
	})
	sort.Slice(anns, func(i, j int) bool { return anns[i].Seq < anns[j].Seq })
	for _, a := range anns {
		if !primaryOwner[a.TupleOID] {
			continue // orphan (its tuple was deleted); drop
		}
		extra := append([]int64(nil), attachedTo[a.ID]...)
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		snap.Annotations = append(snap.Annotations, snapshotAnnotation{
			Text: a.Text, TupleOID: a.TupleOID,
			Columns: append([]string(nil), a.Columns...),
			Author:  a.Author, Seq: a.Seq, Extra: extra,
		})
	}

	return &snap, nil
}

// pageCap recovers the configured records-per-page parameter.
func (db *DB) pageCap() int {
	for _, name := range db.cat.TableNames() {
		if t, err := db.cat.Table(name); err == nil {
			return t.Data.PageCap()
		}
	}
	return 0
}

// Load reconstructs a database from a snapshot produced by Save.
func Load(r io.Reader) (*DB, error) {
	return LoadWithConfig(r, Config{})
}

// LoadWithConfig is Load with an explicit configuration for the
// reconstructed database (statement timeout, default budget, fault
// policy; PageCap comes from the snapshot itself).
//
// Replay runs under SnapshotRetry: a transient storage fault discards
// the half-built database and replays the decoded snapshot from
// scratch. All attempts share one pager accountant, so fault-injection
// state (FailFirstWrites windows in particular) progresses across
// attempts instead of re-arming each try.
func LoadWithConfig(r io.Reader, cfg Config) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d", snap.Version)
	}
	cfg.PageCap = snap.PageCap
	acct := &pager.Accountant{}
	if cfg.Faults != nil {
		acct.SetFaultPolicy(cfg.Faults)
	}
	var db *DB
	err := withRetry(SnapshotRetry, func() error {
		db = newDB(cfg, acct)
		return db.replaySnapshot(&snap)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// replaySnapshot rebuilds state through the normal engine paths.
func (db *DB) replaySnapshot(snap *snapshot) error {
	// Instances and classifier models.
	for i := range snap.Instances {
		def := snap.Instances[i].Def
		if err := db.registerInstance(&def); err != nil {
			return err
		}
		if st := snap.Instances[i].ClassifierState; st != nil {
			db.classifiers[strings.ToLower(def.Name)] = bayes.FromState(st)
		}
	}

	// Tables, tuples (recording old->new OIDs), and instance links.
	oidMap := map[int64]int64{}
	tableOf := map[int64]string{} // old OID -> table name
	for _, st := range snap.Tables {
		cols := make([]model.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = model.Column{Name: c.Name, Kind: c.Kind}
		}
		if _, err := db.CreateTable(st.Name, model.NewSchema("", cols...)); err != nil {
			return err
		}
		for _, inst := range st.Instances {
			if err := db.LinkInstance(st.Name, inst, false); err != nil {
				return err
			}
		}
		for _, tu := range st.Tuples {
			newOID, err := db.Insert(st.Name, tu.Values...)
			if err != nil {
				return err
			}
			oidMap[tu.OID] = newOID
			tableOf[tu.OID] = st.Name
		}
	}

	// Replay annotations in original Seq order: summarization re-derives
	// every summary object and statistic.
	for _, a := range snap.Annotations {
		table := tableOf[a.TupleOID]
		if table == "" {
			continue
		}
		ann, err := db.AddAnnotation(table, oidMap[a.TupleOID], a.Text, a.Columns, a.Author)
		if err != nil {
			return err
		}
		for _, oldOID := range a.Extra {
			if t2 := tableOf[oldOID]; t2 != "" {
				if err := db.AttachAnnotation(t2, oidMap[oldOID], ann.ID); err != nil {
					return err
				}
			}
		}
	}

	// Indexes last (bulk creation over the replayed summaries).
	for _, st := range snap.Tables {
		for _, col := range st.DataIdx {
			if err := db.CreateDataIndex(st.Name, col); err != nil {
				return err
			}
		}
		for _, inst := range st.SummaryIdx {
			if err := db.CreateSummaryIndex(st.Name, inst); err != nil {
				return err
			}
		}
		for _, inst := range st.BaselineIdx {
			if err := db.CreateBaselineIndex(st.Name, inst); err != nil {
				return err
			}
		}
	}
	return nil
}
