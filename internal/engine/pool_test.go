package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// poolTestQueries exercise every access path: summary-index descent,
// full scans with propagation, aggregation, and a join.
var poolTestQueries = []string{
	`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`,
	`SELECT id, name FROM Birds b WHERE b.family = 'Corvidae'`,
	`SELECT family, count(*), max(id) FROM Birds b GROUP BY family`,
	`SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family AND r.id < 4`,
}

// TestPoolOnOffIdentity builds the same dataset with and without a
// buffer pool and asserts every query returns identical rows with
// identical LOGICAL I/O — the pool may only change physical traffic.
// The rendering gates follow: pool-off EXPLAIN ANALYZE must not mention
// buffers or cache, pool-on must.
func TestPoolOnOffIdentity(t *testing.T) {
	plain, _ := testDB(t, 40)
	pooled, _ := testDBWithConfig(t, 40, Config{PageCap: 16, BufferPoolPages: pager.MinPoolFrames})
	if plain.BufferPool() != nil || pooled.BufferPool() == nil {
		t.Fatal("pool attachment wrong way around")
	}
	if err := plain.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	if err := pooled.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	for _, q := range poolTestQueries {
		pb := plain.Accountant().Stats()
		qb := pooled.Accountant().Stats()
		r1, err := plain.Query(q, nil)
		if err != nil {
			t.Fatalf("plain %s: %v", q, err)
		}
		r2, err := pooled.Query(q, nil)
		if err != nil {
			t.Fatalf("pooled %s: %v", q, err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			if r1.Rows[i].Tuple.String() != r2.Rows[i].Tuple.String() {
				t.Fatalf("%s row %d: %s vs %s", q, i, r1.Rows[i].Tuple, r2.Rows[i].Tuple)
			}
		}
		pd := plain.Accountant().Stats().Sub(pb)
		qd := pooled.Accountant().Stats().Sub(qb)
		if pd.PageReads != qd.PageReads || pd.PageWrites != qd.PageWrites ||
			pd.NodeReads != qd.NodeReads || pd.NodeWrites != qd.NodeWrites {
			t.Fatalf("%s: logical I/O diverges:\nplain  %+v\npooled %+v", q, pd, qd)
		}
		if pd.CacheAccesses() != 0 {
			t.Fatalf("%s: pool-off run produced cache traffic: %+v", q, pd)
		}
		if qd.CacheAccesses() == 0 {
			t.Fatalf("%s: pool-on run produced no cache traffic", q)
		}
	}
	// Rendering gates.
	ap, err := plain.ExplainAnalyze(poolTestQueries[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := ap.String(); strings.Contains(s, "buffers") || strings.Contains(s, "cache=") {
		t.Fatalf("pool-off EXPLAIN ANALYZE mentions the cache:\n%s", s)
	}
	if s := plain.Metrics().String(); strings.Contains(s, "cache:") {
		t.Fatalf("pool-off metrics mention the cache:\n%s", s)
	}
	aq, err := pooled.ExplainAnalyze(poolTestQueries[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := aq.String(); !strings.Contains(s, "cache=hit=") {
		t.Fatalf("pool-on EXPLAIN ANALYZE footer lacks cache info:\n%s", s)
	}
	if s := pooled.Metrics().String(); !strings.Contains(s, "cache: hit=") {
		t.Fatalf("pool-on metrics lack the cache line:\n%s", s)
	}
}

// TestPoolWarmRunCutsPhysicalReads is the headline claim: at a pool at
// least as large as the working set, a warm run of the selection query
// pays >= 10x fewer physical reads than a cold one, while logical reads
// stay identical.
func TestPoolWarmRunCutsPhysicalReads(t *testing.T) {
	db, _ := testDBWithConfig(t, 60, Config{PageCap: 8, BufferPoolPages: 512})
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := poolTestQueries[1]
	run := func() pager.Stats {
		before := db.Accountant().Stats()
		if _, err := db.Query(q, nil); err != nil {
			t.Fatal(err)
		}
		return db.Accountant().Stats().Sub(before)
	}
	db.BufferPool().EvictAll()
	cold := run()
	warm := run()
	if cold.PhysReads == 0 {
		t.Fatalf("cold run paid no physical reads: %+v", cold)
	}
	if cold.PageReads != warm.PageReads {
		t.Fatalf("logical reads diverge cold/warm: %d/%d", cold.PageReads, warm.PageReads)
	}
	minWarm := warm.PhysReads
	if minWarm == 0 {
		minWarm = 1
	}
	if cold.PhysReads < 10*minWarm {
		t.Fatalf("warm reduction %d/%d < 10x", cold.PhysReads, warm.PhysReads)
	}
	if st := db.BufferPool().Stats(); st.MaxResident > st.Frames {
		t.Fatalf("residency exceeded budget: %+v", st)
	}
}

// TestFaultRecoveryWithSmallPool extends the P4/P6 fault-recovery tests
// to an adversarially small frame budget: the working set does not fit,
// so queries continuously evict — including write-backs of pages the
// index build dirtied, which makes the write policy fire during reads.
// Faults must stay typed, the pool must stay consistent, and with the
// policy lifted the structures must satisfy P4 and P6.
func TestFaultRecoveryWithSmallPool(t *testing.T) {
	for _, policy := range []*pager.FaultPolicy{
		{EveryKthRead: 11},
		{EveryKthWrite: 7},
		{FailFirstReads: 2, EveryKthWrite: 13},
	} {
		db, _ := testDBWithConfig(t, 60, Config{PageCap: 8, BufferPoolPages: pager.MinPoolFrames})
		if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			t.Fatal(err)
		}
		q := poolTestQueries[0]
		db.Accountant().SetFaultPolicy(policy)
		faulted := 0
		for i := 0; i < 15; i++ {
			_, err := db.Query(q, nil)
			if err == nil {
				continue
			}
			var fe *pager.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("policy %+v, iteration %d: fault surfaced untyped: %v", policy, i, err)
			}
			faulted++
		}
		if faulted == 0 {
			t.Fatalf("policy %+v never fired across 15 eviction-churning queries", policy)
		}
		db.Accountant().SetFaultPolicy(nil)

		// P6: index structure intact despite mid-eviction faults.
		if err := db.SummaryIndex("Birds", "ClassBird1").Tree().Validate(); err != nil {
			t.Fatalf("policy %+v: P6 violated: %v", policy, err)
		}
		// P4: index and brute-force scan agree.
		withIdx, err := db.Query(q, nil)
		if err != nil {
			t.Fatalf("policy %+v: post-fault query: %v", policy, err)
		}
		noIdx, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
		if err != nil {
			t.Fatalf("policy %+v: post-fault scan: %v", policy, err)
		}
		if len(withIdx.Rows) != len(noIdx.Rows) {
			t.Fatalf("policy %+v: P4 violated: index %d rows, scan %d",
				policy, len(withIdx.Rows), len(noIdx.Rows))
		}
		if st := db.BufferPool().Stats(); st.MaxResident > st.Frames {
			t.Fatalf("policy %+v: residency exceeded budget: %+v", policy, st)
		}
	}
}

// TestParallelScanSharedPool runs parallel-plan queries from several
// goroutines against one shared pool while a writer churns annotations —
// the -race leg of the satellite. Parallel scan workers pin frames
// independently; the pool's lock must keep hit/miss/eviction transitions
// coherent.
func TestParallelScanSharedPool(t *testing.T) {
	db, oids := testDBWithConfig(t, 48, Config{PageCap: 16, BufferPoolPages: 64})
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	db.SetMaxParallelWorkers(4)
	queries := []string{
		`SELECT family, count(*), min(id), max(id) FROM Birds b GROUP BY family`,
		`SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
		`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1`,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var errs errCollector
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				if _, err := db.Query(q, nil); err != nil {
					errs.add(fmt.Errorf("pooled reader %d: %w", w, err))
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			if _, err := db.AddAnnotation("Birds", oids[i%len(oids)],
				annText("Disease", i), nil, "writer"); err != nil {
				errs.add(fmt.Errorf("writer add: %w", err))
				return
			}
			if i%15 == 0 {
				if _, err := db.Insert("Birds", model.NewInt(int64(3000+i)),
					model.NewText("new"), model.NewText("Corvidae")); err != nil {
					errs.add(fmt.Errorf("writer insert: %w", err))
					return
				}
			}
		}
	}()
	wg.Wait()
	errs.report(t)
	// Quiesced: parallel and serial agree, pool stayed within budget.
	for _, q := range queries {
		par, err := db.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Rows) != len(ser.Rows) {
			t.Fatalf("%s: parallel %d rows, serial %d", q, len(par.Rows), len(ser.Rows))
		}
	}
	if st := db.BufferPool().Stats(); st.MaxResident > st.Frames {
		t.Fatalf("residency exceeded budget: %+v", st)
	}
	if err := db.SummaryIndex("Birds", "ClassBird1").Tree().Validate(); err != nil {
		t.Fatalf("P6 violated after shared-pool stress: %v", err)
	}
}
