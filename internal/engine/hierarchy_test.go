package engine

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// hierDB builds a table with a hierarchical classifier:
//
//	Health
//	├── Infection
//	└── Parasite
//	Other
func hierDB(t *testing.T) (*DB, int64) {
	t.Helper()
	db := New(Config{PageCap: 16})
	if _, err := db.CreateTable("T", model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt})); err != nil {
		t.Fatal(err)
	}
	training := map[string][]string{
		"Infection": {
			"bacterial infection with fever and inflammation",
			"viral infection spreading through the flock",
		},
		"Parasite": {
			"parasites and ticks found under the feathers",
			"worm parasite burden in sampled individuals",
		},
		"Other": {
			"photo uploaded general comment",
			"duplicate record see reference",
		},
	}
	err := db.DefineHierarchicalClassifier("HealthTree",
		[]string{"Health", "Infection", "Parasite", "Other"},
		map[string]string{"Infection": "Health", "Parasite": "Health"},
		training)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE T ADD INDEXABLE HealthTree"); err != nil {
		t.Fatal(err)
	}
	oid, err := db.Insert("T", model.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	return db, oid
}

func TestHierarchicalClassifierCounts(t *testing.T) {
	db, oid := hierDB(t)
	for _, text := range []string{
		"a bacterial infection with fever was confirmed",
		"another viral infection case in the flock",
		"ticks and a worm parasite were found",
		"photo uploaded of the bird",
	} {
		if _, err := db.AddAnnotation("T", oid, text, nil, "u"); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := db.Table("T")
	obj := tbl.GetSummaries(oid).Get("HealthTree")
	get := func(l string) int {
		t.Helper()
		n, err := obj.GetLabelValue(l)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if get("Infection") != 2 || get("Parasite") != 1 || get("Other") != 1 {
		t.Fatalf("leaf counts: Infection=%d Parasite=%d Other=%d",
			get("Infection"), get("Parasite"), get("Other"))
	}
	// The parent label is the exact subtree union.
	if get("Health") != 3 {
		t.Errorf("Health = %d, want 3", get("Health"))
	}
}

func TestHierarchicalParentIsQueryableAndIndexed(t *testing.T) {
	db, oid := hierDB(t)
	oid2, _ := db.Insert("T", model.NewInt(2))
	db.AddAnnotation("T", oid, "bacterial infection with fever", nil, "u")
	db.AddAnnotation("T", oid, "a worm parasite was found", nil, "u")
	db.AddAnnotation("T", oid2, "photo uploaded general comment", nil, "u")

	q := `SELECT id FROM T r WHERE r.$.getSummaryObject('HealthTree').getLabelValue('Health') >= 2`
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple.Values[0].Int != 1 {
		t.Fatalf("parent-level query: %s", res)
	}
	// The Summary-BTree answers the parent-level predicate too.
	expl, _ := db.Explain(q, nil)
	if !strings.Contains(expl, "SummaryBTreeScan T AS r ON HealthTree.Health >= 2") {
		t.Errorf("parent label not index-answered:\n%s", expl)
	}
	// Zoom on the parent drills into the combined subtree.
	zooms, err := db.ZoomIn("T", "HealthTree", "Health", "id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(zooms) != 1 || len(zooms[0].Annotations) != 2 {
		t.Fatalf("parent zoom: %+v", zooms)
	}
}

func TestHierarchicalDeleteMaintainsAncestors(t *testing.T) {
	db, oid := hierDB(t)
	ann, _ := db.AddAnnotation("T", oid, "bacterial infection with fever", nil, "u")
	db.AddAnnotation("T", oid, "worm parasite found", nil, "u")
	if err := db.DeleteAnnotation("T", ann.ID); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	obj := tbl.GetSummaries(oid).Get("HealthTree")
	inf, _ := obj.GetLabelValue("Infection")
	health, _ := obj.GetLabelValue("Health")
	if inf != 0 || health != 1 {
		t.Errorf("after delete: Infection=%d Health=%d", inf, health)
	}
	// Index reflects the ancestor decrement.
	res, err := db.Query(`SELECT id FROM T r
		WHERE r.$.getSummaryObject('HealthTree').getLabelValue('Health') = 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("index stale after hierarchical delete: %d rows", len(res.Rows))
	}
}

func TestHierarchyValidation(t *testing.T) {
	db := New(Config{})
	// Unknown parent.
	if err := db.DefineHierarchicalClassifier("H1", []string{"A"},
		map[string]string{"A": "Missing"}, nil); err == nil {
		t.Error("unknown parent should fail")
	}
	// Cycle.
	if err := db.DefineHierarchicalClassifier("H2", []string{"A", "B"},
		map[string]string{"A": "B", "B": "A"}, nil); err == nil {
		t.Error("cycle should fail")
	}
}
