// Package btree implements a B+Tree with string keys, int64 payloads,
// duplicate-key support, and leaf-chained range scans. It is the
// standard index of the engine and the substrate the Summary-BTree
// (internal/index) builds on: the Summary-BTree keeps the same structure
// and maintenance algorithms and differs only in what its leaf payloads
// point at (backward pointers to the data heap).
//
// Node accesses are charged to a pager.Accountant, one read per node
// visited and one write per node modified, so logarithmic access-path
// claims are testable. Nodes are addressed by id: without a buffer pool
// they live in an in-memory node table, and with one attached to the
// accountant they live in pool frames and round-trip through the pool's
// backing store on eviction. Mutations pin the descent path (plus the
// siblings a rebalance touches) for their duration; scans pin
// hand-over-hand, one node at a time. Logical charges are identical in
// both modes, at the same call sites.
//
// When the accountant carries an MVCC epoch clock, nodes are versioned
// for snapshot reads: each node carries the epoch stamp of the mutation
// that produced it, the (single) writer clones a node copy-on-write
// before its first touch in a new epoch — pushing the superseded
// version onto a per-node overlay chain — and AsOf returns a read-only
// view frozen at a snapshot epoch that resolves every node to the
// version visible there, without taking the writer's lock. Freed nodes
// (merge victims, collapsed roots, released trees) are reclaimed via
// the clock's retire mechanism only once no pinned epoch can still
// reach them; node ids are never reused.
package btree

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/mvcc"
	"repro/internal/pager"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 64

// Tree is a B+Tree. Not safe for concurrent mutation; with a clock
// attached, any number of AsOf views may read concurrently with the
// single mutator.
type Tree struct {
	acct   *pager.Accountant
	pool   *pager.BufferPool
	space  int32
	order  int // max entries per node
	rootID int64
	nextID int64
	mem    map[int64]*node // node table when no pool and no clock
	size   int
	nodes  int

	// clock/v enable MVCC node versioning; view/snap mark a read-only
	// snapshot view produced by AsOf (rootID/size/nodes are then frozen
	// copies of the writer's fields at the view's epoch).
	clock *mvcc.Clock
	v     *treeState
	view  bool
	snap  uint64
}

// treeState is the version store shared between a versioned tree and
// its snapshot views: superseded node versions and — in unpooled mode —
// the resident node table, which readers and deferred reclamations
// access without the writer's lock and so must live behind a mutex.
type treeState struct {
	mu      sync.RWMutex
	overlay map[int64][]nodeVer // superseded versions, newest last
	mem     map[int64]*node     // unpooled resident nodes (nil when pooled)
}

// nodeVer is one superseded node version: n was the node's current
// version for epochs in [n.stamp, until).
type nodeVer struct {
	until uint64
	n     *node
}

// node ids start at 1; 0 means "none" (end of the leaf chain). stamp is
// the epoch of the mutation that produced this version (zero when
// unversioned); it is written before the node becomes reachable and
// never rewritten.
type node struct {
	id       int64
	leaf     bool
	keys     []string
	vals     []int64 // leaf only; len == len(keys)
	children []int64 // internal only; len == len(keys)+1
	next     int64   // leaf chain
	stamp    uint64
}

// nodeWire is the gob form of a node for buffer-pool write-back.
type nodeWire struct {
	ID       int64
	Leaf     bool
	Keys     []string
	Vals     []int64
	Children []int64
	Next     int64
	Stamp    uint64
}

type nodeCodec struct{}

func (nodeCodec) EncodePage(v any) ([]byte, error) {
	n := v.(*node)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(nodeWire{
		ID: n.id, Leaf: n.leaf, Keys: n.keys, Vals: n.vals,
		Children: n.children, Next: n.next, Stamp: n.stamp,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (nodeCodec) DecodePage(data []byte) (any, error) {
	var w nodeWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	// Structural validation: a torn or bit-flipped node image that still
	// gob-decodes must fail here as an integrity error, not corrupt the
	// tree's invariants silently.
	if w.Leaf {
		if len(w.Vals) != len(w.Keys) {
			return nil, fmt.Errorf("btree: corrupt leaf image %d: %d keys but %d values", w.ID, len(w.Keys), len(w.Vals))
		}
	} else if len(w.Children) != len(w.Keys)+1 {
		return nil, fmt.Errorf("btree: corrupt internal-node image %d: %d keys but %d children", w.ID, len(w.Keys), len(w.Children))
	}
	return &node{
		id: w.ID, leaf: w.Leaf, keys: w.Keys, vals: w.Vals,
		children: w.Children, next: w.Next, stamp: w.Stamp,
	}, nil
}

// New builds a tree of the given order (maximum entries per node); order
// < 4 is raised to 4. If acct has a buffer pool attached, the tree
// registers its own node space with it; if acct carries an MVCC clock,
// nodes are versioned for snapshot reads.
func New(acct *pager.Accountant, order int) *Tree {
	if order < 4 {
		order = 4
	}
	t := &Tree{acct: acct, order: order, nextID: 1}
	if c := acct.Clock(); c != nil {
		t.clock = c
		t.v = &treeState{overlay: make(map[int64][]nodeVer)}
	}
	if pool := acct.Pool(); pool != nil {
		t.pool = pool
		t.space = pool.NewSpace(nodeCodec{})
	} else if t.v != nil {
		t.v.mem = make(map[int64]*node)
	} else {
		t.mem = make(map[int64]*node)
	}
	root := &node{leaf: true}
	t.attach(root)
	t.rootID = root.id
	if t.pool != nil {
		t.pool.Unpin(t.space, root.id, true)
	}
	t.nodes = 1
	if t.v != nil {
		t.clock.AddPruner(t.pruneVersions)
	}
	return t
}

// NewLike builds an empty tree sharing t's order and accountant — used
// when an index must be rebuilt (e.g. Summary-BTree width extension).
// Call Release on the old tree once it is swapped out.
func NewLike(t *Tree) *Tree { return New(t.acct, t.order) }

// AsOf returns a read-only view of the tree frozen at epoch snap. It
// must be taken while the tree's current state IS the state at snap
// (the engine takes views at epoch publication, under the writer lock);
// the view then resolves node versions against later mutations without
// any lock, for as long as the caller holds a clock pin on snap.
func (t *Tree) AsOf(snap uint64) *Tree {
	g := *t
	g.view = true
	g.snap = snap
	return &g
}

// Release drops the tree's nodes from the buffer pool (no-op without a
// pool). The tree must not be used afterwards. With a clock attached
// the reclamation is deferred until no pinned epoch can still resolve
// the tree's nodes through a snapshot view.
func (t *Tree) Release() {
	if t.v != nil {
		pool, space, v := t.pool, t.space, t.v
		t.clock.Retire(func() {
			if pool != nil {
				pool.DropSpace(space)
			}
			v.mu.Lock()
			v.mem = nil
			v.overlay = make(map[int64][]nodeVer)
			v.mu.Unlock()
		})
		return
	}
	if t.pool != nil {
		t.pool.DropSpace(t.space)
	}
	t.mem = nil
}

// stampNew returns the epoch stamp for a node the writer creates now.
func (t *Tree) stampNew() uint64 {
	if t.v != nil {
		return t.clock.Stamp()
	}
	return 0
}

// memNode reads id's current version from the in-memory table (unpooled
// mode). Versioned tables are shared with concurrent readers and
// deferred reclamations, so access goes through the version-store lock.
func (t *Tree) memNode(id int64) *node {
	if t.v != nil {
		t.v.mu.RLock()
		n := t.v.mem[id]
		t.v.mu.RUnlock()
		return n
	}
	return t.mem[id]
}

// attach assigns n a fresh id and materializes it — pinned (and dirty)
// in pooled mode, resident in the node table otherwise.
func (t *Tree) attach(n *node) {
	n.id = t.nextID
	t.nextID++
	n.stamp = t.stampNew()
	if t.pool != nil {
		t.pool.NewPage(t.space, n.id, n)
	} else if t.v != nil {
		t.v.mu.Lock()
		t.v.mem[n.id] = n
		t.v.mu.Unlock()
	} else {
		t.mem[n.id] = n
	}
}

// pruneVersions discards node versions no pinned epoch can still
// resolve. Registered with the clock at construction.
func (t *Tree) pruneVersions(min uint64) {
	t.v.mu.Lock()
	for id, vs := range t.v.overlay {
		i := 0
		for i < len(vs) && vs[i].until <= min {
			i++
		}
		if i == len(vs) {
			delete(t.v.overlay, id)
		} else if i > 0 {
			t.v.overlay[id] = vs[i:]
		}
	}
	t.v.mu.Unlock()
}

// cloneNode deep-copies a node version for copy-on-write mutation.
func cloneNode(n *node, st uint64) *node {
	return &node{
		id: n.id, leaf: n.leaf,
		keys:     append([]string(nil), n.keys...),
		vals:     append([]int64(nil), n.vals...),
		children: append([]int64(nil), n.children...),
		next:     n.next, stamp: st,
	}
}

// overlayNode finds the newest superseded version of id visible at the
// view's snapshot.
func (t *Tree) overlayNode(id int64) *node {
	t.v.mu.RLock()
	defer t.v.mu.RUnlock()
	vs := t.v.overlay[id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].n.stamp <= t.snap {
			return vs[i].n
		}
	}
	return nil
}

// readNode resolves id's version visible at the view's snapshot. The
// current version comes back pinned in pooled mode (pinned=true; the
// caller must unpin); superseded versions are immutable and unpinned.
func (t *Tree) readNode(id int64) (*node, bool) {
	if t.pool != nil {
		n := t.pool.Get(t.space, id).(*node)
		if n.stamp <= t.snap {
			return n, true
		}
		t.pool.Unpin(t.space, id, false)
	} else {
		t.v.mu.RLock()
		n := t.v.mem[id]
		t.v.mu.RUnlock()
		if n != nil && n.stamp <= t.snap {
			return n, false
		}
	}
	return t.overlayNode(id), false
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Order returns the tree's order.
func (t *Tree) Order() int { return t.order }

// Nodes returns the number of allocated nodes.
func (t *Tree) Nodes() int { return t.nodes }

// peek returns id's node for read-only inspection without holding a pin:
// in pooled mode the frame is unpinned immediately, and the returned
// object stays valid (if the frame is later evicted the object is merely
// a stale immutable copy, which read-only single-threaded callers
// tolerate). On a view, the snapshot-resolved version is returned.
func (t *Tree) peek(id int64) *node {
	if t.view {
		n, pinned := t.readNode(id)
		if pinned {
			t.pool.Unpin(t.space, id, false)
		}
		if n == nil {
			n = &node{leaf: true}
		}
		return n
	}
	if t.pool == nil {
		return t.memNode(id)
	}
	n := t.pool.Get(t.space, id).(*node)
	t.pool.Unpin(t.space, id, false)
	return n
}

// pinTrack pins id, releases the previously tracked pin, and records id
// in *cur so a deferred cleanup can release whatever is held when a scan
// unwinds (including via an injected-fault panic).
func (t *Tree) pinTrack(cur *int64, id int64) *node {
	if t.pool == nil {
		return t.memNode(id)
	}
	n := t.pool.Get(t.space, id).(*node)
	if *cur != 0 {
		t.pool.Unpin(t.space, *cur, false)
	}
	*cur = id
	return n
}

// readTrack is pinTrack for all read paths: on a view it resolves the
// snapshot version (pinning it hand-over-hand only when the current
// version serves the snapshot, so the seed pin discipline — and its
// eviction pattern — is preserved for single-threaded runs); otherwise
// it is exactly pinTrack.
func (t *Tree) readTrack(cur *int64, id int64) *node {
	if !t.view {
		return t.pinTrack(cur, id)
	}
	n, pinned := t.readNode(id)
	if t.pool != nil && *cur != 0 {
		t.pool.Unpin(t.space, *cur, false)
	}
	if pinned {
		*cur = id
	} else {
		*cur = 0
	}
	if n == nil {
		n = &node{leaf: true} // defensive: no version at snapshot
	}
	return n
}

func (t *Tree) unTrack(cur *int64) {
	if t.pool != nil && *cur != 0 {
		t.pool.Unpin(t.space, *cur, false)
	}
	*cur = 0
}

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h, n := 1, t.peek(t.rootID)
	for !n.leaf {
		h++
		n = t.peek(n.children[0])
	}
	return h
}

func (t *Tree) minEntries() int { return t.order / 2 }

// --- pin scope ------------------------------------------------------------

// pinScope tracks the frames a mutation has pinned so they are released
// exactly once when the operation finishes — including when it unwinds
// through a write-back fault panic. Without a pool it only routes node
// loads to the in-memory table. A mutation pins its descent path plus
// the siblings a rebalance touches, so the frame budget a tree needs is
// about twice its height; pager.MinPoolFrames covers default-order trees.
//
// On a versioned tree, get is also the copy-on-write point: a node
// whose current version belongs to an earlier epoch is cloned before it
// is handed to the mutation, with the superseded version pushed onto
// the overlay for snapshot readers.
type pinScope struct {
	t     *Tree
	ids   []int64
	dirty []bool
}

func (t *Tree) scope() *pinScope { return &pinScope{t: t} }

// get pins id and returns its node, cloned copy-on-write if snapshot
// readers may still resolve the current version; the pin is held until
// put, drop, or release.
func (s *pinScope) get(id int64) *node {
	t := s.t
	if t.pool == nil {
		n := t.memNode(id)
		if t.v != nil {
			if st := t.clock.Stamp(); n.stamp != st {
				cl := cloneNode(n, st)
				t.v.mu.Lock()
				t.v.overlay[id] = append(t.v.overlay[id], nodeVer{until: st, n: n})
				t.v.mem[id] = cl
				t.v.mu.Unlock()
				return cl
			}
		}
		return n
	}
	n := t.pool.Get(t.space, id).(*node)
	s.ids = append(s.ids, id)
	s.dirty = append(s.dirty, false)
	if t.v != nil {
		if st := t.clock.Stamp(); n.stamp != st {
			cl := cloneNode(n, st)
			// Publish the superseded version before swapping the frame
			// value, so a reader that sees the clone finds the old version
			// already on the overlay.
			t.v.mu.Lock()
			t.v.overlay[id] = append(t.v.overlay[id], nodeVer{until: st, n: n})
			t.v.mu.Unlock()
			t.pool.SetValue(t.space, id, cl)
			return cl
		}
	}
	return n
}

// alloc creates a node in the scope, pinned and dirty.
func (s *pinScope) alloc(leaf bool) *node {
	n := &node{leaf: leaf}
	s.t.attach(n)
	if s.t.pool != nil {
		s.ids = append(s.ids, n.id)
		s.dirty = append(s.dirty, true)
	}
	return n
}

// markDirty flags id's most recent pin so its frame is marked dirty on
// release.
func (s *pinScope) markDirty(id int64) {
	for i := len(s.ids) - 1; i >= 0; i-- {
		if s.ids[i] == id {
			s.dirty[i] = true
			return
		}
	}
}

// put releases id's most recent pin early (failed probes, untouched
// siblings) so pins don't accumulate past the frame budget.
func (s *pinScope) put(id int64) {
	for i := len(s.ids) - 1; i >= 0; i-- {
		if s.ids[i] == id {
			if s.t.pool != nil {
				s.t.pool.Unpin(s.t.space, id, s.dirty[i])
			}
			s.ids[i] = 0
			return
		}
	}
}

// drop releases every pin the scope holds on id and deletes the node
// (merge victims, collapsed roots). On a versioned tree the physical
// reclamation is deferred through the clock: a reader pinned at an
// earlier epoch may still resolve the node's resident current version,
// and no epoch at or after the in-progress one references the id (ids
// are never reused), so dropping once the minimum pinned epoch reaches
// the mutation's stamp is exact.
func (s *pinScope) drop(id int64) {
	t := s.t
	if t.pool == nil {
		if t.v != nil {
			v := t.v
			t.clock.Retire(func() {
				v.mu.Lock()
				delete(v.mem, id)
				v.mu.Unlock()
			})
			return
		}
		delete(t.mem, id)
		return
	}
	for i := range s.ids {
		if s.ids[i] == id {
			s.t.pool.Unpin(s.t.space, id, false)
			s.ids[i] = 0
		}
	}
	if t.v != nil {
		pool, space := t.pool, t.space
		t.clock.Retire(func() { pool.Drop(space, id) })
		return
	}
	t.pool.Drop(t.space, id)
}

// release unpins everything the scope still holds.
func (s *pinScope) release() {
	if s.t.pool == nil {
		return
	}
	for i, id := range s.ids {
		if id != 0 {
			s.t.pool.Unpin(s.t.space, id, s.dirty[i])
		}
	}
	s.ids = s.ids[:0]
	s.dirty = s.dirty[:0]
}

// --- search ---------------------------------------------------------------

// lowerBound returns the index of the first key in n >= key.
func lowerBound(n *node, key string) int {
	return sort.SearchStrings(n.keys, key)
}

// upperBound returns the index of the first key in n > key.
func upperBound(n *node, key string) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
}

// descendLower walks from the root to the leaf that may contain key,
// using lower-bound routing (leftmost occurrence for duplicates); each
// visited node is one page read. Pins hand-over-hand through *cur; the
// returned leaf is left pinned for the caller.
func (t *Tree) descendLower(cur *int64, key string) *node {
	n := t.readTrack(cur, t.rootID)
	t.acct.ReadNode(1)
	for !n.leaf {
		// Separator keys[i] is the minimum key of children[i+1]: route to
		// children[i] where i = first separator > key... for leftmost
		// duplicates we must go left of equal separators.
		//
		// keys[i] == key means children[i+1] starts at key; the leftmost
		// duplicate may still live at the end of children[i]'s subtree, so
		// descend into children[i].
		n = t.readTrack(cur, n.children[lowerBound(n, key)])
		t.acct.ReadNode(1)
	}
	return n
}

// SearchEq returns the payloads of every entry with exactly key.
func (t *Tree) SearchEq(key string) []int64 {
	var out []int64
	t.ScanRange(key, key, func(k string, v int64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Contains reports whether key is present.
func (t *Tree) Contains(key string) bool {
	found := false
	t.ScanRange(key, key, func(string, int64) bool {
		found = true
		return false
	})
	return found
}

// ScanRange visits every entry with from <= key <= to in key order,
// stopping early when fn returns false. An empty `to` of "\xff..." is not
// required: use ScanFrom for open-ended scans.
func (t *Tree) ScanRange(from, to string, fn func(key string, val int64) bool) {
	var cur int64
	defer t.unTrack(&cur)
	n := t.descendLower(&cur, from)
	for {
		i := lowerBound(n, from)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > to {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		if n.next == 0 {
			return
		}
		n = t.readTrack(&cur, n.next)
		t.acct.ReadNode(1)
		from = "" // subsequent leaves start at position 0
	}
}

// ScanFrom visits every entry with key >= from in key order.
func (t *Tree) ScanFrom(from string, fn func(key string, val int64) bool) {
	var cur int64
	defer t.unTrack(&cur)
	n := t.descendLower(&cur, from)
	for {
		i := lowerBound(n, from)
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		if n.next == 0 {
			return
		}
		n = t.readTrack(&cur, n.next)
		t.acct.ReadNode(1)
		from = ""
	}
}

// ScanAll visits every entry in key order.
func (t *Tree) ScanAll(fn func(key string, val int64) bool) { t.ScanFrom("", fn) }

// --- insert ---------------------------------------------------------------

// Insert adds (key, val). Duplicate keys are allowed; duplicate
// (key, val) pairs are stored as distinct entries.
func (t *Tree) Insert(key string, val int64) {
	s := t.scope()
	defer s.release()
	sep, rightID := t.insert(s, t.rootID, key, val)
	if rightID != 0 {
		newRoot := s.alloc(false)
		newRoot.keys = []string{sep}
		newRoot.children = []int64{t.rootID, rightID}
		t.rootID = newRoot.id
		t.nodes++
		t.acct.WriteNode(1)
	}
	t.size++
}

// insert descends into id's node; on child split it absorbs the new
// separator. Returns a (separator, right sibling id) pair when the node
// itself splits, with rightID 0 meaning no split.
func (t *Tree) insert(s *pinScope, id int64, key string, val int64) (string, int64) {
	n := s.get(id)
	t.acct.ReadNode(1)
	if n.leaf {
		i := upperBound(n, key)
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		s.markDirty(id)
		t.acct.WriteNode(1)
		if len(n.keys) > t.order {
			return t.splitLeaf(s, n)
		}
		return "", 0
	}
	ci := upperBound(n, key)
	sep, rightID := t.insert(s, n.children[ci], key, val)
	if rightID == 0 {
		return "", 0
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = rightID
	s.markDirty(id)
	t.acct.WriteNode(1)
	if len(n.keys) > t.order {
		return t.splitInternal(s, n)
	}
	return "", 0
}

func (t *Tree) splitLeaf(s *pinScope, n *node) (string, int64) {
	mid := len(n.keys) / 2
	right := s.alloc(true)
	right.keys = append([]string(nil), n.keys[mid:]...)
	right.vals = append([]int64(nil), n.vals[mid:]...)
	right.next = n.next
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right.id
	s.markDirty(n.id)
	t.nodes++
	t.acct.WriteNode(2)
	return right.keys[0], right.id
}

func (t *Tree) splitInternal(s *pinScope, n *node) (string, int64) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := s.alloc(false)
	right.keys = append([]string(nil), n.keys[mid+1:]...)
	right.children = append([]int64(nil), n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	s.markDirty(n.id)
	t.nodes++
	t.acct.WriteNode(2)
	return sep, right.id
}

// --- delete ---------------------------------------------------------------

// Delete removes one entry matching (key, val), returning whether an
// entry was removed. With duplicates, the leftmost match is removed.
func (t *Tree) Delete(key string, val int64) bool {
	s := t.scope()
	defer s.release()
	root := s.get(t.rootID)
	if !t.deleteFrom(s, root, key, val) {
		return false
	}
	t.size--
	// Collapse a root that lost its last separator.
	if !root.leaf && len(root.keys) == 0 {
		oldID := root.id
		t.rootID = root.children[0]
		s.drop(oldID)
		t.nodes--
	}
	return true
}

// deleteFrom removes (key, val) from the subtree under n and rebalances
// its children; it reports whether a removal happened. The caller
// handles n's own underflow. n must be pinned by the caller's scope.
func (t *Tree) deleteFrom(s *pinScope, n *node, key string, val int64) bool {
	t.acct.ReadNode(1)
	if n.leaf {
		for i := lowerBound(n, key); i < len(n.keys) && n.keys[i] == key; i++ {
			if n.vals[i] == val {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				s.markDirty(n.id)
				t.acct.WriteNode(1)
				return true
			}
		}
		return false
	}
	// Duplicates equal to a separator can live in either adjacent child;
	// try the lower-bound child first, then subsequent children while the
	// separator still equals key.
	ci := lowerBound(n, key)
	for {
		childID := n.children[ci]
		child := s.get(childID)
		if t.deleteFrom(s, child, key, val) {
			t.fixChild(s, n, ci)
			return true
		}
		s.put(childID) // failed probe: release before trying the next child
		if ci >= len(n.keys) || n.keys[ci] != key {
			return false
		}
		ci++
	}
}

// fixChild rebalances n.children[ci] if it underflowed, by borrowing
// from a sibling or merging with one. Sibling inspection is logically
// free: only the three nodes a borrow rewrites are charged.
func (t *Tree) fixChild(s *pinScope, n *node, ci int) {
	childID := n.children[ci]
	child := s.get(childID)
	min := t.minEntries()
	if len(child.keys) >= min {
		s.put(childID)
		return
	}
	// Try borrowing from the left sibling.
	if ci > 0 {
		leftID := n.children[ci-1]
		left := s.get(leftID)
		if len(left.keys) > min {
			if child.leaf {
				lk, lv := left.keys[len(left.keys)-1], left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = append([]string{lk}, child.keys...)
				child.vals = append([]int64{lv}, child.vals...)
				n.keys[ci-1] = child.keys[0]
			} else {
				// Rotate through the separator.
				child.keys = append([]string{n.keys[ci-1]}, child.keys...)
				n.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.children = append([]int64{left.children[len(left.children)-1]}, child.children...)
				left.children = left.children[:len(left.children)-1]
			}
			s.markDirty(leftID)
			s.markDirty(childID)
			s.markDirty(n.id)
			t.acct.WriteNode(3)
			return
		}
		s.put(leftID)
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 {
		rightID := n.children[ci+1]
		right := s.get(rightID)
		if len(right.keys) > min {
			if child.leaf {
				rk, rv := right.keys[0], right.vals[0]
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				child.keys = append(child.keys, rk)
				child.vals = append(child.vals, rv)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				right.keys = right.keys[1:]
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
			s.markDirty(rightID)
			s.markDirty(childID)
			s.markDirty(n.id)
			t.acct.WriteNode(3)
			return
		}
		s.put(rightID)
	}
	// Merge with a sibling.
	if ci > 0 {
		t.mergeChildren(s, n, ci-1)
	} else {
		t.mergeChildren(s, n, ci)
	}
}

// mergeChildren merges n.children[i+1] into n.children[i] and removes
// separator n.keys[i].
func (t *Tree) mergeChildren(s *pinScope, n *node, i int) {
	leftID, rightID := n.children[i], n.children[i+1]
	left, right := s.get(leftID), s.get(rightID)
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	s.markDirty(leftID)
	s.markDirty(n.id)
	s.drop(rightID)
	t.nodes--
	t.acct.WriteNode(2)
}

// --- validation -----------------------------------------------------------

// Validate checks the structural invariants: key order within and across
// nodes, separator correctness, uniform leaf depth, occupancy bounds for
// non-root nodes, and leaf-chain consistency. It returns the first
// violation found. On a snapshot view it validates the tree as of the
// view's epoch.
func (t *Tree) Validate() error {
	depth := -1
	var prevLeaf *node
	count := 0
	var walk func(n *node, d int, lo, hi string, hasLo, hasHi bool) error
	walk = func(n *node, d int, lo, hi string, hasLo, hasHi bool) error {
		if n.id != t.rootID && len(n.keys) < t.minEntries() {
			return fmt.Errorf("btree: underfull node at depth %d: %d < %d", d, len(n.keys), t.minEntries())
		}
		if len(n.keys) > t.order {
			return fmt.Errorf("btree: overfull node at depth %d: %d > %d", d, len(n.keys), t.order)
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return fmt.Errorf("btree: unsorted keys at depth %d: %q > %q", d, n.keys[i-1], n.keys[i])
			}
		}
		for _, k := range n.keys {
			if hasLo && k < lo {
				return fmt.Errorf("btree: key %q below bound %q", k, lo)
			}
			if hasHi && k > hi {
				return fmt.Errorf("btree: key %q above bound %q", k, hi)
			}
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("btree: leaf vals/keys mismatch: %d/%d", len(n.vals), len(n.keys))
			}
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			if prevLeaf != nil && prevLeaf.next != n.id {
				return fmt.Errorf("btree: broken leaf chain")
			}
			prevLeaf = n
			count += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal children/keys mismatch: %d/%d", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			clo, chasLo := lo, hasLo
			chi, chasHi := hi, hasHi
			if i > 0 {
				clo, chasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, chasHi = n.keys[i], true
			}
			if err := walk(t.peek(c), d+1, clo, chi, chasLo, chasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.peek(t.rootID), 0, "", "", false, false); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != 0 {
		return fmt.Errorf("btree: leaf chain extends past last leaf")
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries found", t.size, count)
	}
	return nil
}
