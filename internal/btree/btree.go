// Package btree implements an in-memory B+Tree with string keys, int64
// payloads, duplicate-key support, and leaf-chained range scans. It is
// the standard index of the engine and the substrate the Summary-BTree
// (internal/index) builds on: the Summary-BTree keeps the same structure
// and maintenance algorithms and differs only in what its leaf payloads
// point at (backward pointers to the data heap).
//
// Node accesses are charged to a pager.Accountant, one read per node
// visited and one write per node modified, so logarithmic access-path
// claims are testable.
package btree

import (
	"fmt"
	"sort"

	"repro/internal/pager"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 64

// Tree is a B+Tree. Not safe for concurrent mutation.
type Tree struct {
	acct  *pager.Accountant
	order int // max entries per node
	root  *node
	size  int
	nodes int
}

type node struct {
	leaf     bool
	keys     []string
	vals     []int64 // leaf only; len == len(keys)
	children []*node // internal only; len == len(keys)+1
	next     *node   // leaf chain
}

// New builds a tree of the given order (maximum entries per node); order
// < 4 is raised to 4.
func New(acct *pager.Accountant, order int) *Tree {
	if order < 4 {
		order = 4
	}
	t := &Tree{acct: acct, order: order}
	t.root = &node{leaf: true}
	t.nodes = 1
	return t
}

// NewLike builds an empty tree sharing t's order and accountant — used
// when an index must be rebuilt (e.g. Summary-BTree width extension).
func NewLike(t *Tree) *Tree { return New(t.acct, t.order) }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Order returns the tree's order.
func (t *Tree) Order() int { return t.order }

// Nodes returns the number of allocated nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

func (t *Tree) minEntries() int { return t.order / 2 }

// --- search ---------------------------------------------------------------

// lowerBound returns the index of the first key in n >= key.
func lowerBound(n *node, key string) int {
	return sort.SearchStrings(n.keys, key)
}

// upperBound returns the index of the first key in n > key.
func upperBound(n *node, key string) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
}

// descend walks from the root to the leaf that may contain key, using
// lower-bound routing (leftmost occurrence for duplicates); each visited
// node is one page read.
func (t *Tree) descendLower(key string) *node {
	n := t.root
	t.acct.ReadNode(1)
	for !n.leaf {
		// Separator keys[i] is the minimum key of children[i+1]: route to
		// children[i] where i = first separator > key... for leftmost
		// duplicates we must go left of equal separators.
		i := lowerBound(n, key)
		// keys[i] == key means children[i+1] starts at key; the leftmost
		// duplicate may still live at the end of children[i]'s subtree, so
		// descend into children[i].
		n = n.children[i]
		t.acct.ReadNode(1)
	}
	return n
}

// SearchEq returns the payloads of every entry with exactly key.
func (t *Tree) SearchEq(key string) []int64 {
	var out []int64
	t.ScanRange(key, key, func(k string, v int64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Contains reports whether key is present.
func (t *Tree) Contains(key string) bool {
	found := false
	t.ScanRange(key, key, func(string, int64) bool {
		found = true
		return false
	})
	return found
}

// ScanRange visits every entry with from <= key <= to in key order,
// stopping early when fn returns false. An empty `to` of "\xff..." is not
// required: use ScanFrom for open-ended scans.
func (t *Tree) ScanRange(from, to string, fn func(key string, val int64) bool) {
	n := t.descendLower(from)
	for n != nil {
		i := lowerBound(n, from)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > to {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		if n != nil {
			t.acct.ReadNode(1)
		}
		from = "" // subsequent leaves start at position 0
	}
}

// ScanFrom visits every entry with key >= from in key order.
func (t *Tree) ScanFrom(from string, fn func(key string, val int64) bool) {
	n := t.descendLower(from)
	for n != nil {
		i := lowerBound(n, from)
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		if n != nil {
			t.acct.ReadNode(1)
		}
		from = ""
	}
}

// ScanAll visits every entry in key order.
func (t *Tree) ScanAll(fn func(key string, val int64) bool) { t.ScanFrom("", fn) }

// --- insert ---------------------------------------------------------------

// Insert adds (key, val). Duplicate keys are allowed; duplicate
// (key, val) pairs are stored as distinct entries.
func (t *Tree) Insert(key string, val int64) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		newRoot := &node{
			keys:     []string{sep},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.nodes++
		t.acct.WriteNode(1)
	}
	t.size++
}

// insert descends into n; on child split it absorbs the new separator.
// Returns a (separator, right sibling) pair when n itself splits.
func (t *Tree) insert(n *node, key string, val int64) (string, *node) {
	t.acct.ReadNode(1)
	if n.leaf {
		i := upperBound(n, key)
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.acct.WriteNode(1)
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return "", nil
	}
	ci := upperBound(n, key)
	sep, right := t.insert(n.children[ci], key, val)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	t.acct.WriteNode(1)
	if len(n.keys) > t.order {
		return t.splitInternal(n)
	}
	return "", nil
}

func (t *Tree) splitLeaf(n *node) (string, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]string(nil), n.keys[mid:]...),
		vals: append([]int64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	t.nodes++
	t.acct.WriteNode(2)
	return right.keys[0], right
}

func (t *Tree) splitInternal(n *node) (string, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	t.nodes++
	t.acct.WriteNode(2)
	return sep, right
}

// --- delete ---------------------------------------------------------------

// Delete removes one entry matching (key, val), returning whether an
// entry was removed. With duplicates, the leftmost match is removed.
func (t *Tree) Delete(key string, val int64) bool {
	deleted := t.delete(t.root, key, val)
	if !deleted {
		return false
	}
	t.size--
	// Collapse a root that lost its last separator.
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
		t.nodes--
	}
	return true
}

// delete removes (key, val) from the subtree under n and rebalances its
// children; it reports whether a removal happened. The caller handles
// n's own underflow.
func (t *Tree) delete(n *node, key string, val int64) bool {
	t.acct.ReadNode(1)
	if n.leaf {
		for i := lowerBound(n, key); i < len(n.keys) && n.keys[i] == key; i++ {
			if n.vals[i] == val {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				t.acct.WriteNode(1)
				return true
			}
		}
		return false
	}
	// Duplicates equal to a separator can live in either adjacent child;
	// try the lower-bound child first, then subsequent children while the
	// separator still equals key.
	ci := lowerBound(n, key)
	for {
		if t.delete(n.children[ci], key, val) {
			t.fixChild(n, ci)
			return true
		}
		if ci >= len(n.keys) || n.keys[ci] != key {
			return false
		}
		ci++
	}
}

// fixChild rebalances n.children[ci] if it underflowed, by borrowing
// from a sibling or merging with one.
func (t *Tree) fixChild(n *node, ci int) {
	child := n.children[ci]
	min := t.minEntries()
	if len(child.keys) >= min {
		return
	}
	// Try borrowing from the left sibling.
	if ci > 0 && len(n.children[ci-1].keys) > min {
		left := n.children[ci-1]
		if child.leaf {
			lk, lv := left.keys[len(left.keys)-1], left.vals[len(left.vals)-1]
			left.keys = left.keys[:len(left.keys)-1]
			left.vals = left.vals[:len(left.vals)-1]
			child.keys = append([]string{lk}, child.keys...)
			child.vals = append([]int64{lv}, child.vals...)
			n.keys[ci-1] = child.keys[0]
		} else {
			// Rotate through the separator.
			child.keys = append([]string{n.keys[ci-1]}, child.keys...)
			n.keys[ci-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
		t.acct.WriteNode(3)
		return
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 && len(n.children[ci+1].keys) > min {
		right := n.children[ci+1]
		if child.leaf {
			rk, rv := right.keys[0], right.vals[0]
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			child.keys = append(child.keys, rk)
			child.vals = append(child.vals, rv)
			n.keys[ci] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[ci])
			n.keys[ci] = right.keys[0]
			right.keys = right.keys[1:]
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
		t.acct.WriteNode(3)
		return
	}
	// Merge with a sibling.
	if ci > 0 {
		t.mergeChildren(n, ci-1)
	} else {
		t.mergeChildren(n, ci)
	}
}

// mergeChildren merges n.children[i+1] into n.children[i] and removes
// separator n.keys[i].
func (t *Tree) mergeChildren(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	t.nodes--
	t.acct.WriteNode(2)
}

// --- validation -----------------------------------------------------------

// Validate checks the structural invariants: key order within and across
// nodes, separator correctness, uniform leaf depth, occupancy bounds for
// non-root nodes, and leaf-chain consistency. It returns the first
// violation found.
func (t *Tree) Validate() error {
	depth := -1
	var prevLeaf *node
	count := 0
	var walk func(n *node, d int, lo, hi string, hasLo, hasHi bool) error
	walk = func(n *node, d int, lo, hi string, hasLo, hasHi bool) error {
		if n != t.root && len(n.keys) < t.minEntries() {
			return fmt.Errorf("btree: underfull node at depth %d: %d < %d", d, len(n.keys), t.minEntries())
		}
		if len(n.keys) > t.order {
			return fmt.Errorf("btree: overfull node at depth %d: %d > %d", d, len(n.keys), t.order)
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return fmt.Errorf("btree: unsorted keys at depth %d: %q > %q", d, n.keys[i-1], n.keys[i])
			}
		}
		for _, k := range n.keys {
			if hasLo && k < lo {
				return fmt.Errorf("btree: key %q below bound %q", k, lo)
			}
			if hasHi && k > hi {
				return fmt.Errorf("btree: key %q above bound %q", k, hi)
			}
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("btree: leaf vals/keys mismatch: %d/%d", len(n.vals), len(n.keys))
			}
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			if prevLeaf != nil && prevLeaf.next != n {
				return fmt.Errorf("btree: broken leaf chain")
			}
			prevLeaf = n
			count += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal children/keys mismatch: %d/%d", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			clo, chasLo := lo, hasLo
			chi, chasHi := hi, hasHi
			if i > 0 {
				clo, chasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, chasHi = n.keys[i], true
			}
			if err := walk(c, d+1, clo, chi, chasLo, chasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, "", "", false, false); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != nil {
		return fmt.Errorf("btree: leaf chain extends past last leaf")
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries found", t.size, count)
	}
	return nil
}
