package btree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pager"
)

func TestEmptyTree(t *testing.T) {
	tr := New(nil, 8)
	if tr.Len() != 0 || tr.Height() != 1 || tr.Nodes() != 1 {
		t.Errorf("empty: len=%d h=%d nodes=%d", tr.Len(), tr.Height(), tr.Nodes())
	}
	if got := tr.SearchEq("x"); got != nil {
		t.Errorf("SearchEq on empty = %v", got)
	}
	if tr.Delete("x", 1) {
		t.Error("Delete on empty should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMinimumOrder(t *testing.T) {
	tr := New(nil, 1)
	if tr.Order() != 4 {
		t.Errorf("Order = %d, want raised to 4", tr.Order())
	}
}

func TestInsertSearchBasic(t *testing.T) {
	tr := New(nil, 4)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		tr.Insert(k, int64(i))
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, k := range keys {
		got := tr.SearchEq(k)
		if len(got) != 1 || got[0] != int64(i) {
			t.Errorf("SearchEq(%q) = %v", k, got)
		}
	}
	if !tr.Contains("alpha") || tr.Contains("zulu") {
		t.Error("Contains misreports")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(nil, 4)
	for i := int64(0); i < 20; i++ {
		tr.Insert("dup", i)
	}
	tr.Insert("aaa", 100)
	tr.Insert("zzz", 200)
	got := tr.SearchEq("dup")
	if len(got) != 20 {
		t.Fatalf("SearchEq(dup) found %d", len(got))
	}
	seen := map[int64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Errorf("duplicate payloads lost: %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Delete specific (key, val) pairs among duplicates.
	if !tr.Delete("dup", 13) {
		t.Fatal("Delete(dup,13) failed")
	}
	if tr.Delete("dup", 13) {
		t.Error("second Delete(dup,13) should fail")
	}
	if len(tr.SearchEq("dup")) != 19 {
		t.Errorf("after delete: %d", len(tr.SearchEq("dup")))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after delete: %v", err)
	}
}

func TestScanRangeInclusive(t *testing.T) {
	tr := New(nil, 4)
	for i := 0; i < 50; i++ {
		tr.Insert(fmt.Sprintf("k%03d", i), int64(i))
	}
	var got []string
	tr.ScanRange("k010", "k015", func(k string, v int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 6 || got[0] != "k010" || got[5] != "k015" {
		t.Errorf("ScanRange = %v", got)
	}
	// Early stop.
	n := 0
	tr.ScanRange("k000", "k049", func(string, int64) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	// Missing bounds still work.
	got = nil
	tr.ScanRange("k0105", "k012x", func(k string, v int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != "k011" || got[1] != "k012" {
		t.Errorf("ScanRange between keys = %v", got)
	}
}

func TestScanFromAndAll(t *testing.T) {
	tr := New(nil, 4)
	for i := 0; i < 30; i++ {
		tr.Insert(fmt.Sprintf("k%03d", i), int64(i))
	}
	var got []int64
	tr.ScanFrom("k025", func(k string, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 || got[0] != 25 {
		t.Errorf("ScanFrom = %v", got)
	}
	total := 0
	last := ""
	tr.ScanAll(func(k string, v int64) bool {
		if k < last {
			t.Fatalf("ScanAll out of order: %q after %q", k, last)
		}
		last = k
		total++
		return true
	})
	if total != 30 {
		t.Errorf("ScanAll visited %d", total)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	var acct pager.Accountant
	tr := New(&acct, 16)
	n := 10000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%08d", i), int64(i))
	}
	maxH := int(math.Ceil(math.Log(float64(n))/math.Log(float64(tr.Order()/2)))) + 2
	if tr.Height() > maxH {
		t.Errorf("height %d exceeds log bound %d", tr.Height(), maxH)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// An equality probe touches O(height) nodes.
	acct.Reset()
	tr.SearchEq("key00005000")
	if reads := acct.Stats().PageReads; reads > int64(tr.Height()+2) {
		t.Errorf("probe read %d nodes, height %d", reads, tr.Height())
	}
}

func TestDeleteRebalancesToValidity(t *testing.T) {
	tr := New(nil, 4)
	n := 500
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("k%04d", i), int64(i))
	}
	// Delete in an order that forces merges and borrows everywhere.
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for step, i := range perm {
		if !tr.Delete(fmt.Sprintf("k%04d", i), int64(i)) {
			t.Fatalf("Delete k%04d failed", i)
		}
		if step%25 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("final Validate: %v", err)
	}
}

// Property P6: a long random workload of inserts and deletes (with
// duplicate keys) stays consistent with a reference multimap and keeps
// all structural invariants.
func TestRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New(nil, 6)
	ref := map[string][]int64{}
	keyspace := make([]string, 60)
	for i := range keyspace {
		keyspace[i] = fmt.Sprintf("key%02d", i)
	}
	nextVal := int64(0)

	for step := 0; step < 8000; step++ {
		k := keyspace[rng.Intn(len(keyspace))]
		if rng.Intn(3) != 0 { // insert
			tr.Insert(k, nextVal)
			ref[k] = append(ref[k], nextVal)
			nextVal++
		} else if vals := ref[k]; len(vals) > 0 { // delete one
			vi := rng.Intn(len(vals))
			v := vals[vi]
			if !tr.Delete(k, v) {
				t.Fatalf("step %d: Delete(%q,%d) failed", step, k, v)
			}
			ref[k] = append(vals[:vi], vals[vi+1:]...)
		}
		if step%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("final: %v", err)
	}
	total := 0
	for k, vals := range ref {
		total += len(vals)
		got := tr.SearchEq(k)
		if len(got) != len(vals) {
			t.Fatalf("SearchEq(%q) = %d entries, want %d", k, len(got), len(vals))
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SearchEq(%q) payloads %v != %v", k, got, want)
			}
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, ref total = %d", tr.Len(), total)
	}
	// Range scan equals reference over a random window.
	lo, hi := keyspace[10], keyspace[40]
	wantN := 0
	for k, vals := range ref {
		if k >= lo && k <= hi {
			wantN += len(vals)
		}
	}
	gotN := 0
	lastKey := ""
	tr.ScanRange(lo, hi, func(k string, v int64) bool {
		if k < lastKey {
			t.Fatalf("scan out of order")
		}
		lastKey = k
		gotN++
		return true
	})
	if gotN != wantN {
		t.Fatalf("ScanRange count %d != %d", gotN, wantN)
	}
}

func TestInsertionCostLogarithmic(t *testing.T) {
	var acct pager.Accountant
	tr := New(&acct, 32)
	for i := 0; i < 20000; i++ {
		tr.Insert(fmt.Sprintf("k%08d", i), int64(i))
	}
	acct.Reset()
	tr.Insert("k00010000x", 1)
	cost := acct.Stats().Total()
	// One root-to-leaf descent plus at most a split chain.
	if cost > int64(3*tr.Height()+4) {
		t.Errorf("insert touched %d pages (height %d)", cost, tr.Height())
	}
}
