package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pager"
)

// TestPooledTreeMatchesUnpooled drives the same operation mix through a
// buffer-pooled tree (at a frame budget far below the node count, so
// nodes round-trip through the backing store) and a plain one, then
// asserts identical contents, shape, structural validity, and logical
// I/O counters — pooling must change only physical traffic.
func TestPooledTreeMatchesUnpooled(t *testing.T) {
	var plainAcct pager.Accountant
	plain := New(&plainAcct, 8)

	var poolAcct pager.Accountant
	pool := pager.NewBufferPool(&poolAcct, 2*pager.MinPoolFrames)
	defer pool.Close()
	pooled := New(&poolAcct, 8)

	rng := rand.New(rand.NewSource(42))
	type entry struct {
		k string
		v int64
	}
	var live []entry
	for step := 0; step < 6000; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			// Duplicate-heavy key space to exercise separator-equal probes.
			k := fmt.Sprintf("k%03d", rng.Intn(200))
			v := int64(step)
			plain.Insert(k, v)
			pooled.Insert(k, v)
			live = append(live, entry{k, v})
		} else {
			i := rng.Intn(len(live))
			e := live[i]
			d1 := plain.Delete(e.k, e.v)
			d2 := pooled.Delete(e.k, e.v)
			if d1 != d2 || !d1 {
				t.Fatalf("step %d: Delete(%q,%d) = %v/%v", step, e.k, e.v, d1, d2)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	if plain.Len() != pooled.Len() || plain.Nodes() != pooled.Nodes() || plain.Height() != pooled.Height() {
		t.Fatalf("shape divergence: len %d/%d nodes %d/%d height %d/%d",
			plain.Len(), pooled.Len(), plain.Nodes(), pooled.Nodes(), plain.Height(), pooled.Height())
	}
	if err := plain.Validate(); err != nil {
		t.Fatalf("plain invalid: %v", err)
	}
	if err := pooled.Validate(); err != nil {
		t.Fatalf("pooled invalid: %v", err)
	}
	collect := func(tr *Tree) []entry {
		var out []entry
		tr.ScanAll(func(k string, v int64) bool {
			out = append(out, entry{k, v})
			return true
		})
		return out
	}
	a, b := collect(plain), collect(pooled)
	if len(a) != len(b) {
		t.Fatalf("scan lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Point lookups across the key space must agree too.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i)
		if got, want := pooled.SearchEq(k), plain.SearchEq(k); len(got) != len(want) {
			t.Fatalf("SearchEq(%q): %d vs %d hits", k, len(got), len(want))
		}
	}
	ps, bs := plainAcct.Stats(), poolAcct.Stats()
	if ps.PageReads != bs.PageReads || ps.PageWrites != bs.PageWrites ||
		ps.NodeReads != bs.NodeReads || ps.NodeWrites != bs.NodeWrites {
		t.Fatalf("logical counters diverge:\nplain  %+v\npooled %+v", ps, bs)
	}
	if ps.CacheAccesses() != 0 {
		t.Fatalf("plain tree generated cache traffic: %+v", ps)
	}
	if pooled.Nodes() > 2*pager.MinPoolFrames && (bs.Evictions == 0 || bs.PhysReads == 0) {
		t.Fatalf("expected eviction churn at %d nodes in %d frames: %+v",
			pooled.Nodes(), 2*pager.MinPoolFrames, bs)
	}
	if st := pool.Stats(); st.MaxResident > st.Frames {
		t.Fatalf("residency exceeded budget: %+v", st)
	}

	// Release must hand every frame back: a fresh tree can then fill the
	// pool without tripping over leaked pins.
	pooled.Release()
	if st := pool.Stats(); st.Resident != 0 {
		t.Fatalf("Release left %d frames resident", st.Resident)
	}
}
