package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ScanResult is the outcome of scanning a log file: the longest valid
// record prefix and where it ends.
type ScanResult struct {
	// Records are the intact records, in LSN order.
	Records []Record
	// Offsets[i] is the byte offset of Records[i]'s frame — the crash
	// boundaries the torture harness cuts at.
	Offsets []int64
	// End is the byte offset just past the last intact record: the
	// length of the valid prefix.
	End int64
	// Torn reports that scanning stopped at a torn or corrupt frame
	// (short header, short payload, implausible length, CRC mismatch, or
	// non-increasing LSN) rather than clean EOF.
	Torn bool
}

// LastLSN returns the final intact record's LSN, or 0 on an empty log.
func (r *ScanResult) LastLSN() uint64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].LSN
}

// Scan reads records from r until EOF or the first invalid frame.
// A torn or corrupt frame ends the scan (marked Torn) without error:
// everything after the valid prefix is unreachable at recovery anyway,
// since LSNs past a gap cannot be trusted. Only genuine read errors
// are returned.
func Scan(r io.Reader) (*ScanResult, error) {
	br := bufio.NewReader(r)
	res := &ScanResult{}
	hdr := make([]byte, headerSize)
	var off int64
	var lastLSN uint64
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return res, nil
			}
			if err == io.ErrUnexpectedEOF {
				res.Torn = true
				return res, nil
			}
			return nil, fmt.Errorf("wal: scan: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxPayload {
			res.Torn = true
			return res, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Torn = true
				return res, nil
			}
			return nil, fmt.Errorf("wal: scan: %w", err)
		}
		crc := crc32.Checksum(hdr[8:], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[4:8]) {
			res.Torn = true
			return res, nil
		}
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		if lsn <= lastLSN {
			res.Torn = true
			return res, nil
		}
		lastLSN = lsn
		res.Records = append(res.Records, Record{
			LSN:     lsn,
			TxID:    binary.LittleEndian.Uint64(hdr[16:24]),
			Type:    Type(hdr[24]),
			Payload: payload,
		})
		res.Offsets = append(res.Offsets, off)
		off += int64(headerSize) + int64(n)
		res.End = off
	}
}

// Recover scans the log file at path and, if the scan found a torn
// tail, truncates the file to the valid prefix in place (fsynced), so
// a subsequent Open appends cleanly after the last intact record. A
// missing file yields an empty result.
func Recover(path string) (*ScanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return &ScanResult{}, nil
		}
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	defer f.Close()
	res, err := Scan(f)
	if err != nil {
		return nil, err
	}
	if res.Torn {
		if err := f.Truncate(res.End); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return res, nil
}
