package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestAppendScanRoundtrip(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		lsn, err := l.Append(Type(i%5+1), uint64(i%3), payload)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d, want %d", lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, TxID: uint64(i % 3), Type: Type(i%5 + 1), Payload: payload})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(res.Records) != len(want) {
		t.Fatalf("%d records, want %d", len(res.Records), len(want))
	}
	for i, rec := range res.Records {
		w := want[i]
		if rec.LSN != w.LSN || rec.TxID != w.TxID || rec.Type != w.Type || !bytes.Equal(rec.Payload, w.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, w)
		}
	}
	if res.LastLSN() != 20 {
		t.Fatalf("LastLSN = %d, want 20", res.LastLSN())
	}
}

// A cut anywhere inside the final frame must truncate back to the
// preceding record boundary, and the reopened log must continue the LSN
// sequence.
func TestTornTailTruncated(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, 0, []byte("body-of-record")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way into the last frame.
	cut := full.Offsets[4] + headerSize/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn {
		t.Fatal("expected torn tail")
	}
	if len(res.Records) != 4 || res.End != full.Offsets[4] {
		t.Fatalf("recovered %d records ending at %d, want 4 ending at %d", len(res.Records), res.End, full.Offsets[4])
	}
	if fi, _ := os.Stat(path); fi.Size() != res.End {
		t.Fatalf("file not truncated: %d bytes, want %d", fi.Size(), res.End)
	}
	// Reopen and append: the sequence continues.
	l2, err := Open(path, Options{NextLSN: res.LastLSN() + 1})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.Append(2, 0, []byte("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("continued lsn = %d, want 5", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Torn || len(res2.Records) != 5 || res2.LastLSN() != 5 {
		t.Fatalf("after reopen: torn=%v records=%d last=%d", res2.Torn, len(res2.Records), res2.LastLSN())
	}
}

// A bit flip in the middle of the log stops the scan at the last record
// before the corruption: records past a broken frame are unreachable.
func TestCorruptionStopsScan(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(1, 0, []byte("some-payload-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in record 3 (index 2).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[full.Offsets[2]+headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || len(res.Records) != 2 {
		t.Fatalf("torn=%v records=%d, want torn with 2 records", res.Torn, len(res.Records))
	}
}

// Concurrent committers under a group-commit window share fsyncs: far
// fewer syncs than commits, with a batch metric reflecting the sharing.
func TestGroupCommitBatches(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{GroupCommitWindow: 2 * time.Millisecond, SyncDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const committers = 8
	const perCommitter = 5
	var wg sync.WaitGroup
	errCh := make(chan error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				lsn, err := l.Append(1, 0, []byte("op"))
				if err != nil {
					errCh <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.Commits != committers*perCommitter {
		t.Fatalf("commits = %d, want %d", m.Commits, committers*perCommitter)
	}
	if m.Fsyncs >= m.Commits {
		t.Fatalf("group commit did not batch: %d fsyncs for %d commits", m.Fsyncs, m.Commits)
	}
	if m.Batches == 0 || m.BatchCommits < m.Batches {
		t.Fatalf("batch accounting: batches=%d batchCommits=%d", m.Batches, m.BatchCommits)
	}
	if m.DurableLSN != m.AppendedLSN {
		t.Fatalf("durable %d != appended %d after all commits", m.DurableLSN, m.AppendedLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// Window 0 is the single-fsync-per-commit baseline: every commit pays
// its own sync.
func TestZeroWindowCommitsFsyncEach(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		lsn, err := l.Append(1, 0, []byte("op"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	m := l.Metrics()
	if m.Fsyncs < n {
		t.Fatalf("strict commits: %d fsyncs for %d commits", m.Fsyncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 4; i++ {
		last, err = l.Append(1, 0, []byte("op"))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Stale watermark: refused without error.
	if ok, err := l.Compact(last - 1); ok || err != nil {
		t.Fatalf("stale compact: ok=%v err=%v", ok, err)
	}
	if ok, err := l.Compact(last); !ok || err != nil {
		t.Fatalf("compact: ok=%v err=%v", ok, err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("log not truncated: %d bytes", fi.Size())
	}
	// LSNs continue past the compaction point.
	lsn, err := l.Append(1, 0, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("post-compact lsn = %d, want %d", lsn, last+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].LSN != last+1 {
		t.Fatalf("post-compact scan: %d records, first lsn %d", len(res.Records), res.Records[0].LSN)
	}
}

// Concurrent appends, commits, flushes, and watermark reads under the
// race detector.
func TestWALConcurrentAppendCommit(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{GroupCommitWindow: time.Millisecond, SyncDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				lsn, err := l.Append(Type(g%3+1), uint64(g), []byte("concurrent"))
				if err != nil {
					errCh <- err
					return
				}
				if i%2 == 0 {
					if err := l.Commit(lsn); err != nil {
						errCh <- err
						return
					}
				} else if err := l.Flush(lsn); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if a, d := l.AppendedLSN(), l.DurableLSN(); d > a {
					errCh <- fmt.Errorf("durable %d ahead of appended %d", d, a)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Records) != 80 {
		t.Fatalf("torn=%v records=%d, want 80 clean records", res.Torn, len(res.Records))
	}
}
