// Package wal implements the engine's write-ahead log: an append-only
// file of typed, CRC-checksummed, LSN-stamped records with group-commit
// durability and torn-tail recovery.
//
// Records are logical redo records (the engine encodes its mutations;
// this package only frames and persists them). The protocol is
// redo-only ARIES-lite:
//
//   - every mutation appends a record BEFORE the in-memory effect may
//     reach any durable structure (the buffer pool enforces this via
//     the page-LSN it stamps on dirty frames — see pager.PageLogger);
//   - a commit waits until its record's LSN is durable (fsynced);
//   - on open, Recover scans the file, validates each record's CRC and
//     LSN monotonicity, and truncates the first torn or corrupt frame
//     and everything after it, leaving the longest valid prefix.
//
// Group commit: with a non-zero window, committers do not fsync
// themselves; they register with a dedicated flusher goroutine that
// sleeps the window, issues ONE fsync for everything appended so far,
// and releases every committer the sync covered. With a zero window
// each commit forces its own fsync (the classic one-fsync-per-commit
// baseline the Figure 20 benchmark compares against).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Type tags a record's payload; meanings are assigned by the engine.
type Type uint8

// Record is one log entry. LSNs are assigned by Append, start at 1, and
// increase by exactly 1 per record (they are record sequence numbers,
// not byte offsets, so compaction preserves monotonicity). TxID groups
// records of one transaction; the engine uses 0 for autocommit.
type Record struct {
	LSN     uint64
	TxID    uint64
	Type    Type
	Payload []byte
}

// Frame layout: [len u32][crc u32][lsn u64][txid u64][type u8][payload].
// The CRC (Castagnoli) covers lsn..payload, so a torn header, torn
// payload, or bit flip anywhere in the record fails verification.
const headerSize = 4 + 4 + 8 + 8 + 1

// maxPayload bounds a frame's declared payload length; a larger value
// in the header is corruption, not a record.
const maxPayload = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

func encodeFrame(rec Record) []byte {
	buf := make([]byte, headerSize+len(rec.Payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(rec.Payload)))
	binary.LittleEndian.PutUint64(buf[8:16], rec.LSN)
	binary.LittleEndian.PutUint64(buf[16:24], rec.TxID)
	buf[24] = byte(rec.Type)
	copy(buf[headerSize:], rec.Payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], castagnoli))
	return buf
}

// Metrics is a snapshot of the log's durability counters.
type Metrics struct {
	// Appends counts records appended.
	Appends int64
	// Fsyncs counts fsyncs issued (group commit, direct flushes, and
	// close-time finalization).
	Fsyncs int64
	// Commits counts Commit calls.
	Commits int64
	// Batches counts group-commit fsyncs that released at least one
	// waiting committer; BatchCommits totals the committers released, so
	// BatchCommits/Batches is the average group size.
	Batches      int64
	BatchCommits int64
	// AppendedLSN / DurableLSN are the high-water marks.
	AppendedLSN uint64
	DurableLSN  uint64
}

// Options configures Open.
type Options struct {
	// GroupCommitWindow is how long the flusher goroutine accumulates
	// committers before issuing one shared fsync. 0 disables grouping:
	// every Commit issues its own fsync.
	GroupCommitWindow time.Duration
	// SyncDelay is slept inside every fsync to model device sync latency
	// (the write-side analogue of pager.Accountant.SetReadDelay; on
	// tmpfs-backed test and bench environments a real fsync is nearly
	// free, which would hide the cost group commit amortizes).
	SyncDelay time.Duration
	// NextLSN is the first LSN Append will assign; recovery passes
	// lastLSN+1 to continue the sequence. 0 means 1.
	NextLSN uint64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	f         *os.File
	window    time.Duration
	syncDelay time.Duration

	// mu guards the append/durability state; cond signals durableLSN
	// advances (and error/close) to waiting committers.
	mu          sync.Mutex
	cond        *sync.Cond
	nextLSN     uint64
	appendedLSN uint64
	durableLSN  uint64
	waiting     []uint64 // LSNs of committers blocked in Commit
	err         error    // sticky: an append or sync failure poisons the log
	closed      bool

	// syncMu serializes fsyncs (the flusher, direct Flush calls, and
	// zero-window commits). Lock order where both are held: syncMu
	// before mu.
	syncMu sync.Mutex

	flushCh     chan struct{}
	flusherDone chan struct{}

	// appendedA/durableA mirror the LSN watermarks for lock-free reads
	// (the buffer pool stamps page LSNs on every dirty unpin).
	appendedA atomic.Uint64
	durableA  atomic.Uint64

	appends      atomic.Int64
	fsyncs       atomic.Int64
	commits      atomic.Int64
	batches      atomic.Int64
	batchCommits atomic.Int64
}

// Open opens (creating if needed) the log file at path, positioned to
// append after any existing content. Callers recovering an existing log
// run Recover first (truncating any torn tail) and pass the resulting
// NextLSN.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	next := opts.NextLSN
	if next == 0 {
		next = 1
	}
	l := &Log{
		f:           f,
		window:      opts.GroupCommitWindow,
		syncDelay:   opts.SyncDelay,
		nextLSN:     next,
		appendedLSN: next - 1,
		durableLSN:  next - 1,
		flushCh:     make(chan struct{}, 1),
		flusherDone: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	l.appendedA.Store(next - 1)
	l.durableA.Store(next - 1)
	go l.flusher()
	return l, nil
}

// Append frames and writes one record, assigning and returning its LSN.
// The record is in the OS page cache after Append returns, but not
// necessarily durable — callers needing durability follow with Commit
// (group commit) or Flush (immediate).
func (l *Log) Append(t Type, txid uint64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.nextLSN
	if _, err := l.f.Write(encodeFrame(Record{LSN: lsn, TxID: txid, Type: t, Payload: payload})); err != nil {
		// A partial frame may have reached the file; the sticky error
		// keeps every later append and commit failing loudly, and the
		// torn tail is truncated at the next recovery.
		l.err = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	l.nextLSN++
	l.appendedLSN = lsn
	l.appendedA.Store(lsn)
	l.appends.Add(1)
	return lsn, nil
}

// AppendedLSN returns the LSN of the last appended record (0 before the
// first append). Lock-free; safe from any goroutine.
func (l *Log) AppendedLSN() uint64 { return l.appendedA.Load() }

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 { return l.durableA.Load() }

// Commit blocks until lsn is durable. With a group-commit window it
// registers with the flusher and shares its fsync with every concurrent
// committer; with a zero window it issues its own fsync. lsn 0 is a
// no-op (the engine's WAL-off paths pass 0).
func (l *Log) Commit(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	l.commits.Add(1)
	if l.window <= 0 {
		return l.flushStrict()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.durableLSN >= lsn {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	// Register once; finishSync removes the entry when a sync covers it
	// (the removal count is the group-commit batch-size metric).
	l.waiting = append(l.waiting, lsn)
	for l.durableLSN < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		select {
		case l.flushCh <- struct{}{}:
		default:
		}
		l.cond.Wait()
	}
	return nil
}

// Flush forces everything appended so far to durable storage if lsn is
// not yet durable — the buffer pool calls this before writing back a
// dirty page (WAL rule: log first). Unlike Commit it never waits on the
// group-commit window.
func (l *Log) Flush(lsn uint64) error {
	if l.durableA.Load() >= lsn {
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.syncMu.Lock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.syncMu.Unlock()
		return ErrClosed
	}
	if l.err != nil || l.durableLSN >= lsn {
		err := l.err
		l.mu.Unlock()
		l.syncMu.Unlock()
		return err
	}
	target := l.appendedLSN
	l.mu.Unlock()
	err := l.doSync()
	l.syncMu.Unlock()
	return l.finishSync(target, err)
}

// flushStrict is the zero-window commit path: one fsync per commit,
// serialized, with no batching — deliberately the single-fsync baseline.
func (l *Log) flushStrict() error {
	l.syncMu.Lock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.syncMu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		l.syncMu.Unlock()
		return err
	}
	target := l.appendedLSN
	l.mu.Unlock()
	err := l.doSync()
	l.syncMu.Unlock()
	return l.finishSync(target, err)
}

// doSync issues one fsync (plus the modeled device latency). The caller
// holds syncMu and NOT mu.
func (l *Log) doSync() error {
	if l.syncDelay > 0 {
		time.Sleep(l.syncDelay)
	}
	l.fsyncs.Add(1)
	return l.f.Sync()
}

// finishSync publishes a completed fsync: advance the durable
// watermark to target, account the released committers as one batch,
// and wake everyone.
func (l *Log) finishSync(target uint64, syncErr error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if syncErr != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: fsync: %w", syncErr)
		}
		l.waiting = l.waiting[:0]
		l.cond.Broadcast()
		return l.err
	}
	if target > l.durableLSN {
		l.durableLSN = target
		l.durableA.Store(target)
	}
	released := 0
	kept := l.waiting[:0]
	for _, w := range l.waiting {
		if w <= l.durableLSN {
			released++
		} else {
			kept = append(kept, w)
		}
	}
	l.waiting = kept
	if released > 0 {
		l.batches.Add(1)
		l.batchCommits.Add(int64(released))
	}
	l.cond.Broadcast()
	return l.err
}

// flusher is the group-commit goroutine: on each wakeup it sleeps the
// window (letting committers accumulate), then issues one fsync
// covering everything appended. Signals arriving during the sync are
// buffered in flushCh, so no commit is ever stranded.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for range l.flushCh {
		if l.window > 0 {
			time.Sleep(l.window)
		}
		l.mu.Lock()
		target := l.appendedLSN
		needed := l.durableLSN < target && l.err == nil && !l.closed
		l.mu.Unlock()
		if !needed {
			continue
		}
		l.syncMu.Lock()
		err := l.doSync()
		l.syncMu.Unlock()
		l.finishSync(target, err)
	}
}

// Compact truncates the log to empty, valid only when upTo equals the
// last appended LSN — i.e. when a checkpoint at upTo supersedes every
// record. Returns false (without error) when records were appended
// since upTo or the log is unusable; the caller simply compacts at the
// next checkpoint. LSNs continue from where they were (they are
// sequence numbers, not offsets), so recovery ordering is unaffected.
func (l *Log) Compact(upTo uint64) (bool, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil || l.appendedLSN != upTo {
		return false, l.err
	}
	if err := l.f.Truncate(0); err != nil {
		l.err = fmt.Errorf("wal: compact: %w", err)
		l.cond.Broadcast()
		return false, l.err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = fmt.Errorf("wal: compact: %w", err)
		l.cond.Broadcast()
		return false, l.err
	}
	if l.syncDelay > 0 {
		time.Sleep(l.syncDelay)
	}
	l.fsyncs.Add(1)
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: compact: %w", err)
		l.cond.Broadcast()
		return false, l.err
	}
	// Every appended record is superseded by the checkpoint, so the
	// durable watermark catches up and any waiting committer is released.
	if l.appendedLSN > l.durableLSN {
		l.durableLSN = l.appendedLSN
		l.durableA.Store(l.durableLSN)
	}
	released := 0
	for _, w := range l.waiting {
		if w <= l.durableLSN {
			released++
		}
	}
	if released > 0 {
		l.batches.Add(1)
		l.batchCommits.Add(int64(released))
	}
	l.waiting = l.waiting[:0]
	l.cond.Broadcast()
	return true, nil
}

// Close finalizes the log: stops the flusher, issues a last fsync so a
// cleanly closed log is fully durable, releases any waiting committers,
// and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.flushCh)
	<-l.flusherDone
	l.syncMu.Lock()
	var syncErr error
	l.mu.Lock()
	target := l.appendedLSN
	if l.err == nil && l.durableLSN < target {
		l.mu.Unlock()
		syncErr = l.doSync()
		l.mu.Lock()
		if syncErr == nil && target > l.durableLSN {
			l.durableLSN = target
			l.durableA.Store(target)
		}
	}
	l.waiting = l.waiting[:0]
	l.cond.Broadcast()
	l.mu.Unlock()
	l.syncMu.Unlock()
	cerr := l.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: close: %w", syncErr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// Metrics snapshots the counters.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Appends:      l.appends.Load(),
		Fsyncs:       l.fsyncs.Load(),
		Commits:      l.commits.Load(),
		Batches:      l.batches.Load(),
		BatchCommits: l.batchCommits.Load(),
		AppendedLSN:  l.appendedA.Load(),
		DurableLSN:   l.durableA.Load(),
	}
}
