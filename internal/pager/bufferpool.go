package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// MinPoolFrames is the smallest frame budget a pool accepts; lower
// requests are raised to it. A B-Tree mutation pins its whole descent
// path plus split/merge siblings, and a scan holds its cursor page while
// probing indexes, so a handful of frames must always be available or
// every operation would exhaust the pool.
const MinPoolFrames = 16

// PageCodec serializes one space's in-memory page representation for
// write-back to the backing store. The storage layers (heap files,
// B-Trees) provide an implementation when they register a space.
// EncodePage must not mutate the page; DecodePage must return a fresh
// object (the pool installs it directly into a frame).
type PageCodec interface {
	EncodePage(v any) ([]byte, error)
	DecodePage(data []byte) (any, error)
}

// pageKey addresses one page: the registered space it belongs to (one
// per heap file or B-Tree) and its page number within that space.
type pageKey struct {
	space int32
	page  int64
}

// frame is one buffer slot: the cached page object plus the pin count,
// dirty bit, the clock algorithm's reference bit, and the page-LSN —
// the WAL watermark the page's latest mutation is covered by, which
// eviction must make durable before writing the page back.
type frame struct {
	key   pageKey
	val   any
	pins  int
	dirty bool
	ref   bool
	valid bool
	lsn   uint64
}

// CorruptPageError reports a page image in the backing store that
// failed its integrity check on read — a torn write (partial page
// image) or bit rot that gob decoding might otherwise absorb silently.
// Like *FaultError it surfaces by panic from the storage layers and is
// recovered into an ordinary error at the executor boundary.
type CorruptPageError struct {
	Space  int32
	Page   int64
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("pager: corrupt page image for page %d in space %d: %s", e.Page, e.Space, e.Reason)
}

// Page images are framed [crc u32][len u32][payload] in the backing
// store: the CRC (Castagnoli) covers the payload and the length echoes
// it, so a torn (short) write or a flipped bit is detected on read
// instead of being handed to the gob decoder, which can misparse a
// truncated stream without erroring.
const pageImageHeader = 8

var pageImageCRC = crc32.MakeTable(crc32.Castagnoli)

// framePageImage prepends the integrity header to an encoded page.
func framePageImage(data []byte) []byte {
	buf := make([]byte, pageImageHeader+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(data, pageImageCRC))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	copy(buf[pageImageHeader:], data)
	return buf
}

// unframePageImage verifies and strips the integrity header.
func unframePageImage(buf []byte, k pageKey) ([]byte, error) {
	if len(buf) < pageImageHeader {
		return nil, &CorruptPageError{Space: k.space, Page: k.page, Reason: fmt.Sprintf("image shorter than header (%d bytes)", len(buf))}
	}
	payload := buf[pageImageHeader:]
	if n := binary.LittleEndian.Uint32(buf[4:8]); int(n) != len(payload) {
		return nil, &CorruptPageError{Space: k.space, Page: k.page, Reason: fmt.Sprintf("length mismatch: header says %d, span holds %d", n, len(payload))}
	}
	if crc := crc32.Checksum(payload, pageImageCRC); crc != binary.LittleEndian.Uint32(buf[0:4]) {
		return nil, &CorruptPageError{Space: k.space, Page: k.page, Reason: "checksum mismatch"}
	}
	return payload, nil
}

// span is a page's extent in the backing file. Gob pages vary in size,
// so spans record both the live length and the allocated capacity; a
// rewrite that still fits stays in place, a grown page is relocated and
// its old extent recycled.
type span struct {
	off int64
	len int
	cap int
}

// BufferPoolStats snapshots a pool's frame occupancy.
type BufferPoolStats struct {
	// Frames is the configured frame budget.
	Frames int
	// Resident is the number of frames currently holding a page.
	Resident int
	// MaxResident is the high-water mark of Resident — never exceeds
	// Frames, which is the bounded-memory guarantee the pool exists for.
	MaxResident int
	// Spaces is the number of registered page spaces.
	Spaces int
}

// BufferPool is a fixed-frame page cache with clock (second-chance)
// eviction and a temp-file backing store. Storage layers register a
// space per storage object, then access pages through Get/Unpin with a
// pin discipline: a pinned frame is never evicted, an unpinned frame may
// be written back (gob-serialized, one physical write) and its frame
// reused. A later access misses, pays one physical read plus
// deserialization, and reinstalls the page — so cold and warm runs are
// genuinely different, which the split logical/physical counters in
// Stats expose.
//
// Fault composition: physical transfers are charged to the accountant,
// where the FaultPolicy and the modeled read delay now apply (logical
// charges are bookkeeping only in pooled mode). A write-back fault
// panics with *FaultError before any pool state changes, so the victim
// stays resident and dirty and the pool remains consistent; the caller
// side recovers the panic at the usual operator boundaries.
//
// All methods are safe for concurrent use; the pool is shared by
// parallel scan workers, each pinning its own pages.
type BufferPool struct {
	acct *Accountant

	mu     sync.Mutex
	frames []frame
	table  map[pageKey]int
	hand   int
	codecs []PageCodec

	file      *os.File
	spans     map[pageKey]span
	freeSpans []span
	fileEnd   int64

	resident    int
	maxResident int
	closed      bool
}

// NewBufferPool builds a pool with the given frame budget (raised to
// MinPoolFrames) and attaches it to acct, detaching and closing any pool
// previously attached there. The backing store is an unlinked temp file
// released on Close or process exit. Creation failure panics: it means
// the environment has no writable temp directory, which no caller can
// meaningfully handle.
func NewBufferPool(acct *Accountant, frames int) *BufferPool {
	if frames < MinPoolFrames {
		frames = MinPoolFrames
	}
	f, err := os.CreateTemp("", "pager-pool-*.pages")
	if err != nil {
		panic(fmt.Errorf("pager: buffer pool backing store: %w", err))
	}
	// Unlink immediately: the file lives until the descriptor closes, and
	// nothing ever needs its name again.
	os.Remove(f.Name())
	p := &BufferPool{
		acct:   acct,
		frames: make([]frame, frames),
		table:  make(map[pageKey]int),
		file:   f,
		spans:  make(map[pageKey]span),
	}
	if old := acct.pool.Swap(p); old != nil {
		old.Close()
	}
	return p
}

// Close detaches the pool from its accountant and releases the backing
// store. Cached pages are discarded, not written back — the pool caches
// in-process objects, so close is only meaningful at teardown.
func (p *BufferPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.acct.pool.CompareAndSwap(p, nil)
	return p.file.Close()
}

// NewSpace registers a storage object's page namespace with its codec
// and returns the space id.
func (p *BufferPool) NewSpace(c PageCodec) int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.codecs = append(p.codecs, c)
	return int32(len(p.codecs) - 1)
}

// NewPage installs a freshly created page, pinned and dirty (it exists
// nowhere else yet). No physical transfer is charged: page birth is a
// logical write, charged by the storage layer as before.
func (p *BufferPool) NewPage(space int32, page int64, v any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := pageKey{space, page}
	if _, ok := p.table[k]; ok {
		panic(fmt.Errorf("pager: NewPage of resident page %d in space %d", page, space))
	}
	i := p.freeFrame()
	p.install(i, k, v, true)
}

// Get returns the page, pinned. A resident page is a cache hit and costs
// nothing; a miss evicts a victim if needed (one physical write if
// dirty), then pays one physical read plus deserialization. The caller
// must Unpin when done with the page object and must not retain the
// object across the Unpin if it intends to mutate it later.
func (p *BufferPool) Get(space int32, page int64) any {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := pageKey{space, page}
	if i, ok := p.table[k]; ok {
		f := &p.frames[i]
		f.pins++
		f.ref = true
		p.acct.cacheHits.Add(1)
		return f.val
	}
	p.acct.cacheMisses.Add(1)
	sp, ok := p.spans[k]
	if !ok {
		panic(fmt.Errorf("pager: read of unknown page %d in space %d", page, space))
	}
	i := p.freeFrame()
	p.acct.physRead() // may panic *FaultError before any state changes
	v := p.readSpan(k, sp)
	p.install(i, k, v, false)
	return v
}

// readSpan reads and decodes one page image, verifying its integrity
// frame. Torn or corrupt images panic *CorruptPageError; decode errors
// on a checksum-valid image indicate a codec bug and panic generically.
// The caller holds p.mu and has charged the physical read.
func (p *BufferPool) readSpan(k pageKey, sp span) any {
	buf := make([]byte, sp.len)
	if _, err := p.file.ReadAt(buf, sp.off); err != nil {
		panic(fmt.Errorf("pager: backing store read: %w", err))
	}
	payload, err := unframePageImage(buf, k)
	if err != nil {
		panic(err)
	}
	v, err := p.codecs[k.space].DecodePage(payload)
	if err != nil {
		panic(fmt.Errorf("pager: page decode: %w", err))
	}
	return v
}

// install claims frame i for k, pinned once. A freshly created page is
// dirty (it exists nowhere else); a page read back from the backing
// store is clean until a caller unpins it dirty. The caller holds p.mu.
func (p *BufferPool) install(i int, k pageKey, v any, dirty bool) {
	p.frames[i] = frame{key: k, val: v, pins: 1, dirty: dirty, ref: true, valid: true}
	if dirty {
		p.stampLSN(&p.frames[i])
	}
	p.table[k] = i
	p.resident++
	if p.resident > p.maxResident {
		p.maxResident = p.resident
	}
}

// stampLSN records on a dirtied frame the WAL's current appended LSN.
// The engine appends a record before applying its mutation, so at the
// moment a page is dirtied the log already holds every record whose
// effects the page can contain — the appended watermark is therefore a
// (conservative) upper bound usable as the page-LSN. The caller holds
// p.mu.
func (p *BufferPool) stampLSN(f *frame) {
	if lg := p.acct.PageLogger(); lg != nil {
		if v := lg.AppendedLSN(); v > f.lsn {
			f.lsn = v
		}
	}
}

// SetValue replaces the cached object of a resident page. The MVCC
// write path uses it to swap in a copy-on-write clone of a page whose
// previous version snapshot readers still hold: the caller pins the
// page, clones it, publishes the old object into its version chain, and
// installs the clone here before unpinning dirty. The page must be
// resident (the caller's pin guarantees it).
func (p *BufferPool) SetValue(space int32, page int64, v any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.table[pageKey{space, page}]
	if !ok {
		panic(fmt.Errorf("pager: SetValue of non-resident page %d in space %d", page, space))
	}
	p.frames[i].val = v
}

// Unpin releases one pin. dirty records that the caller mutated the
// page, so eviction must write it back.
func (p *BufferPool) Unpin(space int32, page int64, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.table[pageKey{space, page}]
	if !ok {
		panic(fmt.Errorf("pager: unpin of non-resident page %d in space %d", page, space))
	}
	f := &p.frames[i]
	if f.pins <= 0 {
		panic(fmt.Errorf("pager: unpin of unpinned page %d in space %d", page, space))
	}
	f.pins--
	if dirty {
		f.dirty = true
		p.stampLSN(f)
	}
	f.ref = true
}

// Drop discards a page that will never be read again (a freed B-Tree
// node): its frame is released without write-back and its backing extent
// recycled. The page must be unpinned.
func (p *BufferPool) Drop(space int32, page int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := pageKey{space, page}
	if i, ok := p.table[k]; ok {
		f := &p.frames[i]
		if f.pins > 0 {
			panic(fmt.Errorf("pager: drop of pinned page %d in space %d", page, space))
		}
		p.release(i)
	}
	p.freeSpan(k)
}

// DropSpace discards every page of a space (a storage object being
// thrown away, e.g. an index rebuilt at a wider key format). All of the
// space's pages must be unpinned.
func (p *BufferPool) DropSpace(space int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.key.space == space {
			if f.pins > 0 {
				panic(fmt.Errorf("pager: drop of pinned page %d in space %d", f.key.page, space))
			}
			p.release(i)
		}
	}
	for k := range p.spans {
		if k.space == space {
			p.freeSpan(k)
		}
	}
}

// EvictAll evicts every unpinned frame (writing back dirty ones) — the
// benchmark harness's "drop caches" switch for measuring cold runs.
func (p *BufferPool) EvictAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].pins == 0 {
			p.evict(i)
		}
	}
}

// Prefetch reads the given pages of a space into unpinned frames ahead
// of demand, in order, and returns how many it installed. It is a pure
// hint with best-effort semantics: resident pages, pages with no backing
// extent (never evicted, or never written), and pages beyond the free
// frame supply are skipped — the last by stopping early rather than
// evicting clock victims, so a prefetch never forces out pages a caller
// still wants. Each installed page is charged as one physical read plus
// a Prefetched tick (no cache miss: the demand Get that follows is a
// hit), keeping PhysReads an honest count of backing-store transfers.
func (p *BufferPool) Prefetch(space int32, pages []int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	installed := 0
	for _, page := range pages {
		k := pageKey{space, page}
		if _, ok := p.table[k]; ok {
			continue
		}
		sp, ok := p.spans[k]
		if !ok {
			continue
		}
		i := p.tryFreeFrame()
		if i < 0 {
			break
		}
		p.acct.physRead() // may panic *FaultError before any state changes
		p.acct.prefetched.Add(1)
		v := p.readSpan(k, sp)
		p.install(i, k, v, false)
		p.frames[p.table[k]].pins = 0 // installed warm, not claimed
		installed++
	}
	return installed
}

// Frames returns the configured frame budget, which the optimizer's
// fetch-path decision compares against the distinct pages an index scan
// will touch.
func (p *BufferPool) Frames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats snapshots frame occupancy.
func (p *BufferPool) Stats() BufferPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return BufferPoolStats{
		Frames:      len(p.frames),
		Resident:    p.resident,
		MaxResident: p.maxResident,
		Spaces:      len(p.codecs),
	}
}

// freeFrame returns the index of an empty frame, evicting a victim by
// the clock (second-chance) policy if none is free. Two full sweeps
// finding only pinned frames means the budget is exhausted — a panic the
// executor surfaces as a query error, since no progress is possible
// without unpinning. The caller holds p.mu.
func (p *BufferPool) freeFrame() int {
	if i := p.tryFreeFrame(); i >= 0 {
		return i
	}
	panic(fmt.Errorf("pager: buffer pool exhausted: all %d frames pinned", len(p.frames)))
}

// tryFreeFrame is freeFrame's non-panicking core: sweep the frames, skip
// pinned ones, give referenced ones a second chance by clearing their
// bit, evict the first unreferenced unpinned frame. Returns -1 when
// every frame is pinned. The caller holds p.mu.
func (p *BufferPool) tryFreeFrame() int {
	for sweep := 0; sweep <= 2*len(p.frames); sweep++ {
		i := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		f := &p.frames[i]
		if !f.valid {
			return i
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		p.evict(i)
		return i
	}
	return -1
}

// evict writes frame i back if dirty and releases it. The write-back is
// ordered so that an injected fault leaves the pool consistent: force
// the WAL through the page-LSN (the write-ahead rule — may block on an
// fsync, may fail), encode (pure), charge the physical write (may panic
// — nothing has changed yet, the victim stays resident and dirty), then
// update the backing store and release the frame. The caller holds p.mu.
func (p *BufferPool) evict(i int) {
	f := &p.frames[i]
	if f.dirty {
		if lg := p.acct.PageLogger(); lg != nil && f.lsn > 0 {
			if err := lg.Flush(f.lsn); err != nil {
				panic(fmt.Errorf("pager: wal flush before write-back of page %d in space %d: %w", f.key.page, f.key.space, err))
			}
		}
		data, err := p.codecs[f.key.space].EncodePage(f.val)
		if err != nil {
			panic(fmt.Errorf("pager: page encode: %w", err))
		}
		p.acct.physWrite() // may panic *FaultError before any state changes
		p.writeSpan(f.key, data)
	}
	p.acct.evictions.Add(1)
	p.release(i)
}

// release clears frame i without write-back; the caller holds p.mu.
func (p *BufferPool) release(i int) {
	delete(p.table, p.frames[i].key)
	p.frames[i] = frame{}
	p.resident--
}

// writeSpan stores a page image wrapped in its integrity frame, reusing
// the existing extent when it still fits, else a recycled extent, else
// fresh space at the file end. A short write — the torn-page case a
// real device can produce — is surfaced immediately rather than left
// for the read side, which would still catch it by checksum. The caller
// holds p.mu.
func (p *BufferPool) writeSpan(k pageKey, data []byte) {
	framed := framePageImage(data)
	sp, ok := p.spans[k]
	if ok && sp.cap >= len(framed) {
		sp.len = len(framed)
	} else {
		if ok {
			p.freeSpans = append(p.freeSpans, sp)
		}
		sp = p.allocSpan(len(framed))
	}
	n, err := p.file.WriteAt(framed, sp.off)
	if err != nil {
		panic(fmt.Errorf("pager: backing store write: %w", err))
	}
	if n != len(framed) {
		panic(fmt.Errorf("pager: short backing store write: %d of %d bytes", n, len(framed)))
	}
	p.spans[k] = sp
}

// allocSpan finds an extent of at least n bytes: first fit from the
// recycled list, else the file end. The caller holds p.mu.
func (p *BufferPool) allocSpan(n int) span {
	for i, sp := range p.freeSpans {
		if sp.cap >= n {
			p.freeSpans = append(p.freeSpans[:i], p.freeSpans[i+1:]...)
			sp.len = n
			return sp
		}
	}
	sp := span{off: p.fileEnd, len: n, cap: n}
	p.fileEnd += int64(n)
	return sp
}

// freeSpan recycles k's backing extent; the caller holds p.mu.
func (p *BufferPool) freeSpan(k pageKey) {
	if sp, ok := p.spans[k]; ok {
		p.freeSpans = append(p.freeSpans, sp)
		delete(p.spans, k)
	}
}
