package pager

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPolicy describes deterministic or probabilistic I/O faults to
// inject at the page-accounting layer, plus an optional per-operation
// latency. It is the disk-failure model a disk-resident deployment
// would face: the heap, B-Tree, and index paths all charge their page
// accesses through an Accountant, so a policy installed there is
// observed by every access path without touching their code.
//
// All mechanisms compose: an operation fails when any of them fires.
// The zero policy injects nothing.
type FaultPolicy struct {
	// FailFirstReads fails the first N page reads issued after the
	// policy is installed — a transient outage that clears once the
	// failing operations have been consumed (bounded retry succeeds).
	FailFirstReads int
	// FailFirstWrites is the write-side analogue.
	FailFirstWrites int

	// EveryKthRead (> 0) deterministically fails every K-th page read.
	EveryKthRead int
	// EveryKthWrite is the write-side analogue.
	EveryKthWrite int

	// ReadProb / WriteProb fail operations with the given probability,
	// drawn from a generator seeded with Seed so runs are reproducible.
	ReadProb  float64
	WriteProb float64
	Seed      int64

	// Latency is slept on every accounted operation while the policy is
	// installed (injected device latency, on top of SetReadDelay).
	Latency time.Duration
}

// FaultError is the typed error behind an injected fault. The storage
// layers (heap, btree, index) expose ok-bool rather than error
// signatures, so the Accountant surfaces a fault by panicking with a
// *FaultError; the executor recovers it at the operator boundary and
// returns it as an ordinary error — errors.As sees it through the
// wrapping chain.
type FaultError struct {
	Op  string // "read" or "write"
	Seq int64  // 1-based operation number under this policy
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("pager: injected %s fault (operation #%d)", e.Op, e.Seq)
}

// faultInjector is the installed runtime state of a FaultPolicy: the
// immutable policy plus per-operation counters and the seeded
// generator. Counters are atomic and the generator mutex-guarded, so
// injection is safe under concurrent readers.
type faultInjector struct {
	policy FaultPolicy
	reads  atomic.Int64
	writes atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultInjector(p FaultPolicy) *faultInjector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultInjector{policy: p, rng: rand.New(rand.NewSource(seed))}
}

func (fi *faultInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	fi.mu.Lock()
	v := fi.rng.Float64()
	fi.mu.Unlock()
	return v < p
}

// onOp records one page operation and panics with a *FaultError when
// the policy says this one fails.
func (fi *faultInjector) onOp(op string) {
	if fi.policy.Latency > 0 {
		time.Sleep(fi.policy.Latency)
	}
	var seq int64
	var failFirst, everyKth int
	var prob float64
	if op == "read" {
		seq = fi.reads.Add(1)
		failFirst, everyKth, prob = fi.policy.FailFirstReads, fi.policy.EveryKthRead, fi.policy.ReadProb
	} else {
		seq = fi.writes.Add(1)
		failFirst, everyKth, prob = fi.policy.FailFirstWrites, fi.policy.EveryKthWrite, fi.policy.WriteProb
	}
	if seq <= int64(failFirst) || (everyKth > 0 && seq%int64(everyKth) == 0) || fi.roll(prob) {
		panic(&FaultError{Op: op, Seq: seq})
	}
}

// SetFaultPolicy installs (or, with nil, clears) a fault-injection
// policy. Safe for concurrent use with ongoing I/O; the injector's
// operation counters start at zero each time a policy is installed.
func (a *Accountant) SetFaultPolicy(p *FaultPolicy) {
	if p == nil {
		a.fault.Store(nil)
		return
	}
	a.fault.Store(newFaultInjector(*p))
}
