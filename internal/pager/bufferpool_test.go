package pager

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

// testPage is the page type the pool tests cache: a mutable payload so
// dirty write-back and round-tripping are observable.
type testPage struct {
	Vals []int64
}

type testCodec struct{}

func (testCodec) EncodePage(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v.(*testPage)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (testCodec) DecodePage(data []byte) (any, error) {
	p := &testPage{}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(p); err != nil {
		return nil, err
	}
	return p, nil
}

func newTestPool(t *testing.T, frames int) (*Accountant, *BufferPool, int32) {
	t.Helper()
	acct := &Accountant{}
	pool := NewBufferPool(acct, frames)
	t.Cleanup(func() { pool.Close() })
	return acct, pool, pool.NewSpace(testCodec{})
}

func TestBufferPoolRoundTripThroughEviction(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	const n = 3 * MinPoolFrames
	for i := 0; i < n; i++ {
		pool.NewPage(space, int64(i), &testPage{Vals: []int64{int64(i), int64(i) * 10}})
		pool.Unpin(space, int64(i), true)
	}
	st := pool.Stats()
	if st.Resident > st.Frames || st.MaxResident > st.Frames {
		t.Fatalf("residency exceeds budget: %+v", st)
	}
	for i := n - 1; i >= 0; i-- {
		p := pool.Get(space, int64(i)).(*testPage)
		if len(p.Vals) != 2 || p.Vals[0] != int64(i) || p.Vals[1] != int64(i)*10 {
			t.Fatalf("page %d corrupted after eviction round trip: %+v", i, p)
		}
		pool.Unpin(space, int64(i), false)
	}
	s := acct.Stats()
	if s.CacheMisses == 0 || s.Evictions == 0 || s.PhysReads == 0 || s.PhysWrites == 0 {
		t.Fatalf("expected misses/evictions/physical traffic with %d pages in %d frames: %+v",
			n, MinPoolFrames, s)
	}
	if s.PageReads != 0 || s.PageWrites != 0 {
		t.Fatalf("pool traffic must not charge logical counters: %+v", s)
	}
}

func TestBufferPoolHitsAreFree(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 1, &testPage{Vals: []int64{7}})
	pool.Unpin(space, 1, true)
	before := acct.Stats()
	for i := 0; i < 10; i++ {
		pool.Get(space, 1)
		pool.Unpin(space, 1, false)
	}
	d := acct.Stats().Sub(before)
	if d.CacheHits != 10 || d.CacheMisses != 0 || d.PhysReads != 0 || d.PhysWrites != 0 {
		t.Fatalf("resident page accesses should be pure hits: %+v", d)
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 0, &testPage{Vals: []int64{42}}) // stays pinned
	for i := 1; i < 4*MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{})
		pool.Unpin(space, int64(i), false)
	}
	// The pinned page must still be resident: getting it is a pure hit.
	acct := pool.acct
	before := acct.Stats()
	p := pool.Get(space, 0).(*testPage)
	if p.Vals[0] != 42 {
		t.Fatalf("pinned page content changed: %+v", p)
	}
	if d := acct.Stats().Sub(before); d.CacheHits != 1 || d.CacheMisses != 0 {
		t.Fatalf("pinned page was evicted: %+v", d)
	}
}

func TestBufferPoolExhaustionPanics(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	for i := 0; i < MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{}) // all pinned
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected exhaustion panic with every frame pinned")
		}
	}()
	pool.NewPage(space, int64(MinPoolFrames), &testPage{})
}

func TestBufferPoolSecondChance(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	for i := 0; i < MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{Vals: []int64{int64(i)}})
		pool.Unpin(space, int64(i), true)
	}
	// Every frame is referenced, so this eviction sweeps once clearing
	// all reference bits, then claims the frame at the hand (page 0).
	pool.NewPage(space, 100, &testPage{})
	pool.Unpin(space, 100, false)
	// Re-reference page 1 — now the only unpinned frame ahead of the
	// hand with its bit set.
	pool.Get(space, 1)
	pool.Unpin(space, 1, false)
	// Next eviction: the clock skips page 1 (second chance, clearing its
	// bit) and evicts page 2 instead.
	pool.NewPage(space, 101, &testPage{})
	pool.Unpin(space, 101, false)
	before := acct.Stats()
	pool.Get(space, 1)
	pool.Unpin(space, 1, false)
	if d := acct.Stats().Sub(before); d.CacheHits != 1 || d.CacheMisses != 0 {
		t.Fatalf("re-referenced page did not get its second chance: %+v", d)
	}
	pool.Get(space, 2)
	pool.Unpin(space, 2, false)
	if d := acct.Stats().Sub(before); d.CacheMisses != 1 {
		t.Fatalf("unreferenced page should have been the victim: %+v", d)
	}
}

func TestBufferPoolWriteBackFaultLeavesPoolConsistent(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	for i := 0; i < MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{Vals: []int64{int64(i)}})
		pool.Unpin(space, int64(i), true)
	}
	acct.SetFaultPolicy(&FaultPolicy{FailFirstWrites: 1})
	var fe *FaultError
	func() {
		defer func() {
			if r := recover(); r != nil {
				err, _ := r.(error)
				if !errors.As(err, &fe) {
					panic(r)
				}
			}
		}()
		pool.NewPage(space, 500, &testPage{}) // must evict a dirty page
	}()
	if fe == nil {
		t.Fatal("expected a *FaultError from the faulted write-back")
	}
	acct.SetFaultPolicy(nil)
	// Pool must be fully consistent: every original page intact, and the
	// failed operation succeeds on retry.
	pool.NewPage(space, 500, &testPage{Vals: []int64{500}})
	pool.Unpin(space, 500, true)
	for i := 0; i < MinPoolFrames; i++ {
		p := pool.Get(space, int64(i)).(*testPage)
		if p.Vals[0] != int64(i) {
			t.Fatalf("page %d lost after faulted write-back: %+v", i, p)
		}
		pool.Unpin(space, int64(i), false)
	}
}

func TestBufferPoolDropSpace(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	keep := pool.NewSpace(testCodec{})
	pool.NewPage(keep, 1, &testPage{Vals: []int64{9}})
	pool.Unpin(keep, 1, true)
	for i := 0; i < 2*MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{})
		pool.Unpin(space, int64(i), false)
	}
	pool.DropSpace(space)
	if p := pool.Get(keep, 1).(*testPage); p.Vals[0] != 9 {
		t.Fatalf("surviving space corrupted: %+v", p)
	}
	pool.Unpin(keep, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading a dropped space's page")
		}
	}()
	pool.Get(space, 0)
}

// TestFaultedReadAccountingInterleaved is the satellite regression: a
// fault in the middle of a multi-page charge must leave the counters
// reflecting only the pages actually reached (the pre-fix Accountant
// charged all n reads and slept the full latency before injecting).
func TestFaultedReadAccountingInterleaved(t *testing.T) {
	var a Accountant
	a.SetFaultPolicy(&FaultPolicy{EveryKthRead: 4})
	if fe := catchFault(func() { a.Read(10) }); fe == nil {
		t.Fatal("expected the 4th of 10 reads to fault")
	}
	if got := a.Stats().PageReads; got != 4 {
		t.Fatalf("faulted Read(10) charged %d reads, want 4 (pages reached)", got)
	}

	a.Reset()
	a.SetFaultPolicy(&FaultPolicy{FailFirstWrites: 1})
	if fe := catchFault(func() { a.Write(10) }); fe == nil {
		t.Fatal("expected the 1st of 10 writes to fault")
	}
	if got := a.Stats().PageWrites; got != 1 {
		t.Fatalf("faulted Write(10) charged %d writes, want 1", got)
	}

	a.Reset()
	a.SetFaultPolicy(&FaultPolicy{EveryKthRead: 2})
	if fe := catchFault(func() { a.ReadNode(5) }); fe == nil {
		t.Fatal("expected the 2nd of 5 node reads to fault")
	}
	if s := a.Stats(); s.NodeReads != 2 || s.PageReads != 2 {
		t.Fatalf("faulted ReadNode(5) charged nodes=%d pages=%d, want 2/2", s.NodeReads, s.PageReads)
	}
}

func TestPooledAccountantSkipsLogicalFaults(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 1, &testPage{})
	pool.Unpin(space, 1, true)
	// With a pool attached, logical charges are bookkeeping only; the
	// policy fires on physical transfers instead.
	acct.SetFaultPolicy(&FaultPolicy{FailFirstReads: 1, FailFirstWrites: 1})
	acct.Read(5)
	acct.Write(5)
	if s := acct.Stats(); s.PageReads != 5 || s.PageWrites != 5 {
		t.Fatalf("pooled logical charges lost: %+v", s)
	}
	// The same policy does fire on physical transfers: the write-back of
	// the dirty page during EvictAll hits the write fault.
	if fe := catchFault(pool.EvictAll); fe == nil {
		t.Fatal("expected EvictAll write-back to fault")
	}
}

// TestBufferPoolPrefetch pins the prefetch contract: evicted pages come
// back as unpinned resident frames charged as physical reads plus
// Prefetched ticks (never cache misses), resident and never-evicted
// pages are skipped, and a pool with no free frames stops early instead
// of evicting victims.
func TestBufferPoolPrefetch(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	const n = MinPoolFrames + 4
	for i := 0; i < n; i++ {
		pool.NewPage(space, int64(i), &testPage{Vals: []int64{int64(i)}})
		pool.Unpin(space, int64(i), true)
	}
	pool.EvictAll()

	before := acct.Stats()
	if got := pool.Prefetch(space, []int64{0, 1, 2}); got != 3 {
		t.Fatalf("Prefetch installed %d, want 3", got)
	}
	d := acct.Stats().Sub(before)
	if d.Prefetched != 3 || d.PhysReads != 3 || d.CacheMisses != 0 {
		t.Fatalf("prefetch delta = %+v, want 3 prefetched, 3 phys, 0 misses", d)
	}

	// The demand Get is now a hit with no further physical traffic, and
	// the page round-tripped intact.
	if v := pool.Get(space, 1).(*testPage); v.Vals[0] != 1 {
		t.Fatalf("prefetched page corrupt: %+v", v)
	}
	pool.Unpin(space, 1, false)
	d = acct.Stats().Sub(before)
	if d.CacheHits != 1 || d.PhysReads != 3 {
		t.Fatalf("post-Get delta = %+v, want 1 hit and still 3 phys", d)
	}

	// Resident pages are skipped outright.
	if got := pool.Prefetch(space, []int64{0, 1, 2}); got != 0 {
		t.Fatalf("re-prefetch installed %d, want 0", got)
	}

	// With every frame pinned there is no free frame and no victim may
	// be taken: prefetch installs nothing.
	pool.EvictAll()
	for i := 0; i < MinPoolFrames; i++ {
		pool.Get(space, int64(i))
	}
	if got := pool.Prefetch(space, []int64{MinPoolFrames, MinPoolFrames + 1}); got != 0 {
		t.Fatalf("prefetch into a fully pinned pool installed %d, want 0", got)
	}
	for i := 0; i < MinPoolFrames; i++ {
		pool.Unpin(space, int64(i), false)
	}

	// A page that was never written out has no backing span: skipped.
	pool.NewPage(space, int64(n), &testPage{Vals: []int64{int64(n)}})
	pool.Unpin(space, int64(n), true)
	pool.Drop(space, int64(n+1)) // no-op guard; page n+1 does not exist
	if got := pool.Prefetch(space, []int64{int64(n + 1)}); got != 0 {
		t.Fatalf("prefetch of span-less page installed %d, want 0", got)
	}
}
