// Package pager provides page-level I/O accounting for the storage
// substrate. The engine is in-memory, but the paper's claims are about
// access paths — how many pages a plan touches — so every heap page and
// index node access is charged to an Accountant. Tests assert access-path
// properties against these counters instead of wall-clock time, and the
// benchmark harness can attach a synthetic per-page read delay to model
// the paper's disk-resident setting.
package pager

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of I/O counters. NodeReads/NodeWrites are the
// subset of PageReads/PageWrites charged by B-Tree node accesses
// (descents and structure maintenance), so index traffic can be told
// apart from heap traffic in EXPLAIN ANALYZE output.
type Stats struct {
	PageReads  int64
	PageWrites int64
	NodeReads  int64
	NodeWrites int64
}

// Sub returns s - o, for measuring a single operation's cost.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
		NodeReads:  s.NodeReads - o.NodeReads,
		NodeWrites: s.NodeWrites - o.NodeWrites,
	}
}

// Add returns s + o, for accumulating per-operation deltas.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads + o.PageReads,
		PageWrites: s.PageWrites + o.PageWrites,
		NodeReads:  s.NodeReads + o.NodeReads,
		NodeWrites: s.NodeWrites + o.NodeWrites,
	}
}

// Total returns reads + writes.
func (s Stats) Total() int64 { return s.PageReads + s.PageWrites }

// NodeAccesses returns the B-Tree node reads + writes.
func (s Stats) NodeAccesses() int64 { return s.NodeReads + s.NodeWrites }

// String renders the counters.
func (s Stats) String() string {
	if n := s.NodeAccesses(); n > 0 {
		return fmt.Sprintf("reads=%d writes=%d nodes=%d", s.PageReads, s.PageWrites, n)
	}
	return fmt.Sprintf("reads=%d writes=%d", s.PageReads, s.PageWrites)
}

// Accountant tracks page I/O. The zero value is ready to use. All
// methods are safe for concurrent use: the counters, the read delay,
// and the fault policy are read and written atomically, so
// SetReadDelay and SetFaultPolicy may be called while readers are
// in flight.
type Accountant struct {
	reads  atomic.Int64
	writes atomic.Int64

	// nodeReads/nodeWrites mirror the subset of reads/writes charged
	// through ReadNode/WriteNode (B-Tree node accesses).
	nodeReads  atomic.Int64
	nodeWrites atomic.Int64

	// readDelay, when non-zero, is slept per page read to simulate a
	// disk-resident database. Nanoseconds.
	readDelay atomic.Int64

	// fault, when non-nil, injects failures and latency into every
	// accounted operation (see FaultPolicy).
	fault atomic.Pointer[faultInjector]
}

// Read charges n page reads. With a fault policy installed, a faulted
// read panics with a *FaultError (see FaultError for why this layer
// panics instead of returning an error).
func (a *Accountant) Read(n int) {
	if a == nil {
		return
	}
	a.reads.Add(int64(n))
	if d := a.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Duration(n))
	}
	if fi := a.fault.Load(); fi != nil {
		for i := 0; i < n; i++ {
			fi.onOp("read")
		}
	}
}

// Write charges n page writes, subject to the installed fault policy
// like Read.
func (a *Accountant) Write(n int) {
	if a == nil {
		return
	}
	a.writes.Add(int64(n))
	if fi := a.fault.Load(); fi != nil {
		for i := 0; i < n; i++ {
			fi.onOp("write")
		}
	}
}

// ReadNode charges n B-Tree node reads: an ordinary page read that is
// additionally attributed to index traffic in Stats.
func (a *Accountant) ReadNode(n int) {
	if a == nil {
		return
	}
	a.nodeReads.Add(int64(n))
	a.Read(n)
}

// WriteNode charges n B-Tree node writes (see ReadNode).
func (a *Accountant) WriteNode(n int) {
	if a == nil {
		return
	}
	a.nodeWrites.Add(int64(n))
	a.Write(n)
}

// SetReadDelay configures the simulated per-page read latency. The
// delay is stored atomically, so it is safe to adjust while queries
// are reading.
func (a *Accountant) SetReadDelay(d time.Duration) {
	a.readDelay.Store(int64(d))
}

// Stats snapshots the counters.
func (a *Accountant) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		PageReads:  a.reads.Load(),
		PageWrites: a.writes.Load(),
		NodeReads:  a.nodeReads.Load(),
		NodeWrites: a.nodeWrites.Load(),
	}
}

// Reset zeroes the counters (the read delay is preserved).
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.reads.Store(0)
	a.writes.Store(0)
	a.nodeReads.Store(0)
	a.nodeWrites.Store(0)
}
