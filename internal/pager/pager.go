// Package pager provides page-level I/O accounting for the storage
// substrate. The engine is in-memory, but the paper's claims are about
// access paths — how many pages a plan touches — so every heap page and
// index node access is charged to an Accountant. Tests assert access-path
// properties against these counters instead of wall-clock time, and the
// benchmark harness can attach a synthetic per-page read delay to model
// the paper's disk-resident setting.
package pager

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mvcc"
)

// Stats is a snapshot of I/O counters. NodeReads/NodeWrites are the
// subset of PageReads/PageWrites charged by B-Tree node accesses
// (descents and structure maintenance), so index traffic can be told
// apart from heap traffic in EXPLAIN ANALYZE output.
//
// PageReads/PageWrites/NodeReads/NodeWrites are LOGICAL counters: they
// count page accesses the storage layers requested, whether or not the
// page was cached. The remaining fields are PHYSICAL: they count buffer
// pool traffic (cache hits and misses, backing-store transfers, and
// evictions) and stay zero when no pool is attached, so pool-off runs
// render identically to the pre-pool engine.
type Stats struct {
	PageReads  int64
	PageWrites int64
	NodeReads  int64
	NodeWrites int64

	PhysReads   int64 `json:",omitempty"`
	PhysWrites  int64 `json:",omitempty"`
	CacheHits   int64 `json:",omitempty"`
	CacheMisses int64 `json:",omitempty"`
	Evictions   int64 `json:",omitempty"`

	// Prefetched counts pages read ahead of demand by BufferPool.Prefetch
	// (each is also a PhysRead; a later Get for the page is a CacheHit).
	Prefetched int64 `json:",omitempty"`
}

// Sub returns s - o, for measuring a single operation's cost.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
		NodeReads:  s.NodeReads - o.NodeReads,
		NodeWrites: s.NodeWrites - o.NodeWrites,

		PhysReads:   s.PhysReads - o.PhysReads,
		PhysWrites:  s.PhysWrites - o.PhysWrites,
		CacheHits:   s.CacheHits - o.CacheHits,
		CacheMisses: s.CacheMisses - o.CacheMisses,
		Evictions:   s.Evictions - o.Evictions,
		Prefetched:  s.Prefetched - o.Prefetched,
	}
}

// Add returns s + o, for accumulating per-operation deltas.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads + o.PageReads,
		PageWrites: s.PageWrites + o.PageWrites,
		NodeReads:  s.NodeReads + o.NodeReads,
		NodeWrites: s.NodeWrites + o.NodeWrites,

		PhysReads:   s.PhysReads + o.PhysReads,
		PhysWrites:  s.PhysWrites + o.PhysWrites,
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
		Evictions:   s.Evictions + o.Evictions,
		Prefetched:  s.Prefetched + o.Prefetched,
	}
}

// Total returns reads + writes.
func (s Stats) Total() int64 { return s.PageReads + s.PageWrites }

// NodeAccesses returns the B-Tree node reads + writes.
func (s Stats) NodeAccesses() int64 { return s.NodeReads + s.NodeWrites }

// CacheAccesses returns the buffer-pool traffic total — zero exactly
// when no pool was involved, which callers use to gate cache rendering
// so pool-off output is byte-identical to the pre-pool engine.
func (s Stats) CacheAccesses() int64 {
	return s.CacheHits + s.CacheMisses + s.PhysReads + s.PhysWrites + s.Evictions + s.Prefetched
}

// String renders the logical counters (the cache counters have their own
// rendering at each observability surface, gated on being nonzero).
func (s Stats) String() string {
	if n := s.NodeAccesses(); n > 0 {
		return fmt.Sprintf("reads=%d writes=%d nodes=%d", s.PageReads, s.PageWrites, n)
	}
	return fmt.Sprintf("reads=%d writes=%d", s.PageReads, s.PageWrites)
}

// CacheString renders the physical/cache counters compactly:
// "hit=H miss=M phys=R+W evict=E".
func (s Stats) CacheString() string {
	out := fmt.Sprintf("hit=%d miss=%d phys=%d+%d evict=%d",
		s.CacheHits, s.CacheMisses, s.PhysReads, s.PhysWrites, s.Evictions)
	if s.Prefetched > 0 {
		out += fmt.Sprintf(" pre=%d", s.Prefetched)
	}
	return out
}

// Accountant tracks page I/O. The zero value is ready to use. All
// methods are safe for concurrent use: the counters, the read delay,
// and the fault policy are read and written atomically, so
// SetReadDelay and SetFaultPolicy may be called while readers are
// in flight.
type Accountant struct {
	reads  atomic.Int64
	writes atomic.Int64

	// nodeReads/nodeWrites mirror the subset of reads/writes charged
	// through ReadNode/WriteNode (B-Tree node accesses).
	nodeReads  atomic.Int64
	nodeWrites atomic.Int64

	// physReads/physWrites count backing-store transfers, and
	// cacheHits/cacheMisses/evictions count buffer-pool events. All are
	// charged by the attached BufferPool and stay zero without one.
	physReads   atomic.Int64
	physWrites  atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	evictions   atomic.Int64
	prefetched  atomic.Int64

	// readDelay, when non-zero, is slept per page read to simulate a
	// disk-resident database. Nanoseconds.
	readDelay atomic.Int64

	// fault, when non-nil, injects failures and latency into every
	// accounted operation (see FaultPolicy).
	fault atomic.Pointer[faultInjector]

	// pool, when non-nil, is the buffer pool serving this accountant's
	// storage layers. With a pool attached, Read/Write/ReadNode/WriteNode
	// become logical-only bookkeeping — the modeled latency and fault
	// injection move to the pool's physical transfers, so a cache hit
	// pays nothing.
	pool atomic.Pointer[BufferPool]

	// logger, when non-nil, is the write-ahead log the buffer pool
	// consults on the write path (see PageLogger).
	logger atomic.Pointer[pageLoggerRef]

	// clock, when non-nil, is the MVCC epoch clock the storage layers
	// (heap files, B-Trees) pick up at creation to version their pages
	// for snapshot reads. The accountant only carries the reference —
	// attaching it here reaches every storage object without threading a
	// parameter through each constructor.
	clock atomic.Pointer[mvcc.Clock]
}

// SetClock attaches (or, with nil, detaches) the MVCC epoch clock that
// storage layers created against this accountant will version their
// pages with. Attach it before creating the catalog so every heap file
// and B-Tree participates.
func (a *Accountant) SetClock(c *mvcc.Clock) { a.clock.Store(c) }

// Clock returns the attached epoch clock, or nil when storage runs
// unversioned (the pre-MVCC single-version behavior).
func (a *Accountant) Clock() *mvcc.Clock {
	if a == nil {
		return nil
	}
	return a.clock.Load()
}

// PageLogger is the write-ahead-log contract the buffer pool enforces
// on its write path: every dirty frame is stamped with the log's
// current appended LSN when it is unpinned dirty (the page cannot
// contain effects of records not yet appended, because the engine
// appends before applying), and before a dirty page image reaches the
// backing store the pool calls Flush with that page-LSN — the classic
// WAL rule "log hits disk before the page does".
type PageLogger interface {
	// AppendedLSN returns the LSN of the last appended record.
	AppendedLSN() uint64
	// Flush forces the log durable through at least lsn.
	Flush(lsn uint64) error
}

// pageLoggerRef boxes the interface for atomic.Pointer.
type pageLoggerRef struct{ l PageLogger }

// SetPageLogger attaches (or, with nil, detaches) the write-ahead log
// observed by the buffer pool's write path. Safe to call while I/O is
// in flight.
func (a *Accountant) SetPageLogger(l PageLogger) {
	if l == nil {
		a.logger.Store(nil)
		return
	}
	a.logger.Store(&pageLoggerRef{l: l})
}

// PageLogger returns the attached write-ahead log, or nil.
func (a *Accountant) PageLogger() PageLogger {
	if a == nil {
		return nil
	}
	ref := a.logger.Load()
	if ref == nil {
		return nil
	}
	return ref.l
}

// Pool returns the attached buffer pool, or nil when page accesses are
// unbuffered (every page stays resident, only logical I/O is charged).
func (a *Accountant) Pool() *BufferPool {
	if a == nil {
		return nil
	}
	return a.pool.Load()
}

// Read charges n page reads. With a fault policy installed, a faulted
// read panics with a *FaultError (see FaultError for why this layer
// panics instead of returning an error). Charging is interleaved per
// page — charge, delay, fault — so after a mid-batch fault the counters
// reflect only the pages actually reached.
func (a *Accountant) Read(n int) { a.readPages(n, false) }

// ReadNode charges n B-Tree node reads: an ordinary page read that is
// additionally attributed to index traffic in Stats.
func (a *Accountant) ReadNode(n int) { a.readPages(n, true) }

func (a *Accountant) readPages(n int, node bool) {
	if a == nil {
		return
	}
	if a.pool.Load() != nil {
		// Pooled: logical bookkeeping only; latency and faults are paid
		// by physical transfers on cache misses.
		if node {
			a.nodeReads.Add(int64(n))
		}
		a.reads.Add(int64(n))
		return
	}
	d := time.Duration(a.readDelay.Load())
	fi := a.fault.Load()
	for i := 0; i < n; i++ {
		if node {
			a.nodeReads.Add(1)
		}
		a.reads.Add(1)
		if d > 0 {
			time.Sleep(d)
		}
		if fi != nil {
			fi.onOp("read")
		}
	}
}

// Write charges n page writes, subject to the installed fault policy
// like Read (charge and fault interleaved per page).
func (a *Accountant) Write(n int) { a.writePages(n, false) }

// WriteNode charges n B-Tree node writes (see ReadNode).
func (a *Accountant) WriteNode(n int) { a.writePages(n, true) }

func (a *Accountant) writePages(n int, node bool) {
	if a == nil {
		return
	}
	if a.pool.Load() != nil {
		if node {
			a.nodeWrites.Add(int64(n))
		}
		a.writes.Add(int64(n))
		return
	}
	fi := a.fault.Load()
	for i := 0; i < n; i++ {
		if node {
			a.nodeWrites.Add(1)
		}
		a.writes.Add(1)
		if fi != nil {
			fi.onOp("write")
		}
	}
}

// physRead charges one backing-store page read: the buffer pool calls it
// on every cache miss, and it is where the modeled read latency and any
// read-fault policy apply in pooled mode.
func (a *Accountant) physRead() {
	a.physReads.Add(1)
	if d := a.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if fi := a.fault.Load(); fi != nil {
		fi.onOp("read")
	}
}

// physWrite charges one backing-store page write (dirty-page write-back
// during eviction), where write-fault policies apply in pooled mode.
func (a *Accountant) physWrite() {
	a.physWrites.Add(1)
	if fi := a.fault.Load(); fi != nil {
		fi.onOp("write")
	}
}

// SetReadDelay configures the simulated per-page read latency. The
// delay is stored atomically, so it is safe to adjust while queries
// are reading.
func (a *Accountant) SetReadDelay(d time.Duration) {
	a.readDelay.Store(int64(d))
}

// Stats snapshots the counters.
func (a *Accountant) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		PageReads:  a.reads.Load(),
		PageWrites: a.writes.Load(),
		NodeReads:  a.nodeReads.Load(),
		NodeWrites: a.nodeWrites.Load(),

		PhysReads:   a.physReads.Load(),
		PhysWrites:  a.physWrites.Load(),
		CacheHits:   a.cacheHits.Load(),
		CacheMisses: a.cacheMisses.Load(),
		Evictions:   a.evictions.Load(),
		Prefetched:  a.prefetched.Load(),
	}
}

// Reset zeroes the counters (the read delay is preserved).
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.reads.Store(0)
	a.writes.Store(0)
	a.nodeReads.Store(0)
	a.nodeWrites.Store(0)
	a.physReads.Store(0)
	a.physWrites.Store(0)
	a.cacheHits.Store(0)
	a.cacheMisses.Store(0)
	a.evictions.Store(0)
	a.prefetched.Store(0)
}
