// Package pager provides page-level I/O accounting for the storage
// substrate. The engine is in-memory, but the paper's claims are about
// access paths — how many pages a plan touches — so every heap page and
// index node access is charged to an Accountant. Tests assert access-path
// properties against these counters instead of wall-clock time, and the
// benchmark harness can attach a synthetic per-page read delay to model
// the paper's disk-resident setting.
package pager

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of I/O counters.
type Stats struct {
	PageReads  int64
	PageWrites int64
}

// Sub returns s - o, for measuring a single operation's cost.
func (s Stats) Sub(o Stats) Stats {
	return Stats{PageReads: s.PageReads - o.PageReads, PageWrites: s.PageWrites - o.PageWrites}
}

// Total returns reads + writes.
func (s Stats) Total() int64 { return s.PageReads + s.PageWrites }

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d", s.PageReads, s.PageWrites)
}

// Accountant tracks page I/O. The zero value is ready to use. Counting is
// safe for concurrent use; SetReadDelay is not (configure before use).
type Accountant struct {
	reads  atomic.Int64
	writes atomic.Int64

	// readDelay, when non-zero, is slept per page read to simulate a
	// disk-resident database. Nanoseconds.
	readDelay atomic.Int64
}

// Read charges n page reads.
func (a *Accountant) Read(n int) {
	if a == nil {
		return
	}
	a.reads.Add(int64(n))
	if d := a.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Duration(n))
	}
}

// Write charges n page writes.
func (a *Accountant) Write(n int) {
	if a == nil {
		return
	}
	a.writes.Add(int64(n))
}

// SetReadDelay configures the simulated per-page read latency.
func (a *Accountant) SetReadDelay(d time.Duration) {
	a.readDelay.Store(int64(d))
}

// Stats snapshots the counters.
func (a *Accountant) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{PageReads: a.reads.Load(), PageWrites: a.writes.Load()}
}

// Reset zeroes the counters (the read delay is preserved).
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.reads.Store(0)
	a.writes.Store(0)
}
