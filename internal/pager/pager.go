// Package pager provides page-level I/O accounting for the storage
// substrate. The engine is in-memory, but the paper's claims are about
// access paths — how many pages a plan touches — so every heap page and
// index node access is charged to an Accountant. Tests assert access-path
// properties against these counters instead of wall-clock time, and the
// benchmark harness can attach a synthetic per-page read delay to model
// the paper's disk-resident setting.
package pager

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of I/O counters.
type Stats struct {
	PageReads  int64
	PageWrites int64
}

// Sub returns s - o, for measuring a single operation's cost.
func (s Stats) Sub(o Stats) Stats {
	return Stats{PageReads: s.PageReads - o.PageReads, PageWrites: s.PageWrites - o.PageWrites}
}

// Total returns reads + writes.
func (s Stats) Total() int64 { return s.PageReads + s.PageWrites }

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d", s.PageReads, s.PageWrites)
}

// Accountant tracks page I/O. The zero value is ready to use. All
// methods are safe for concurrent use: the counters, the read delay,
// and the fault policy are read and written atomically, so
// SetReadDelay and SetFaultPolicy may be called while readers are
// in flight.
type Accountant struct {
	reads  atomic.Int64
	writes atomic.Int64

	// readDelay, when non-zero, is slept per page read to simulate a
	// disk-resident database. Nanoseconds.
	readDelay atomic.Int64

	// fault, when non-nil, injects failures and latency into every
	// accounted operation (see FaultPolicy).
	fault atomic.Pointer[faultInjector]
}

// Read charges n page reads. With a fault policy installed, a faulted
// read panics with a *FaultError (see FaultError for why this layer
// panics instead of returning an error).
func (a *Accountant) Read(n int) {
	if a == nil {
		return
	}
	a.reads.Add(int64(n))
	if d := a.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Duration(n))
	}
	if fi := a.fault.Load(); fi != nil {
		for i := 0; i < n; i++ {
			fi.onOp("read")
		}
	}
}

// Write charges n page writes, subject to the installed fault policy
// like Read.
func (a *Accountant) Write(n int) {
	if a == nil {
		return
	}
	a.writes.Add(int64(n))
	if fi := a.fault.Load(); fi != nil {
		for i := 0; i < n; i++ {
			fi.onOp("write")
		}
	}
}

// SetReadDelay configures the simulated per-page read latency. The
// delay is stored atomically, so it is safe to adjust while queries
// are reading.
func (a *Accountant) SetReadDelay(d time.Duration) {
	a.readDelay.Store(int64(d))
}

// Stats snapshots the counters.
func (a *Accountant) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{PageReads: a.reads.Load(), PageWrites: a.writes.Load()}
}

// Reset zeroes the counters (the read delay is preserved).
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.reads.Store(0)
	a.writes.Store(0)
}
