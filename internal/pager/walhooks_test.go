package pager

import (
	"errors"
	"sync"
	"testing"
)

// stubLogger is a PageLogger that hands out a controllable appended LSN
// and records every Flush target the pool demands.
type stubLogger struct {
	mu       sync.Mutex
	appended uint64
	flushed  []uint64
	err      error
}

func (s *stubLogger) AppendedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

func (s *stubLogger) Flush(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushed = append(s.flushed, lsn)
	return s.err
}

func (s *stubLogger) setAppended(lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appended = lsn
}

func (s *stubLogger) flushes() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.flushed...)
}

// Dirty frames are stamped with the log's appended LSN when unpinned,
// and eviction forces the log through that LSN before the page image
// reaches the backing store — the write-ahead rule.
func TestEvictionFlushesWALThroughPageLSN(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	lg := &stubLogger{}
	acct.SetPageLogger(lg)
	defer acct.SetPageLogger(nil)

	lg.setAppended(7)
	pool.NewPage(space, 0, &testPage{Vals: []int64{1}})
	pool.Unpin(space, 0, true) // page-LSN stamped 7
	lg.setAppended(9)
	pool.Get(space, 0)
	pool.Unpin(space, 0, true) // re-dirtied: stamped up to 9

	// Fill the pool so page 0 is evicted.
	for i := 1; i < 3*MinPoolFrames; i++ {
		pool.NewPage(space, int64(i), &testPage{})
		pool.Unpin(space, int64(i), false)
	}
	var sawNine bool
	for _, lsn := range lg.flushes() {
		if lsn == 9 {
			sawNine = true
		}
		if lsn == 0 {
			t.Fatal("flush demanded for LSN 0")
		}
	}
	if !sawNine {
		t.Fatalf("eviction never flushed through page-LSN 9: flushes=%v", lg.flushes())
	}

	// A clean page read back and evicted again must not demand a flush:
	// its LSN-9 image is already durable on the backing store.
	pool.EvictAll() // drain every remaining dirty frame first
	before := len(lg.flushes())
	pool.Get(space, 0)
	pool.Unpin(space, 0, false)
	pool.EvictAll()
	if n := len(lg.flushes()) - before; n != 0 {
		t.Fatalf("clean page re-eviction demanded %d redundant flushes", n)
	}
}

// A failing WAL flush aborts the eviction by panic before the page
// image is written back, like an injected write fault.
func TestEvictionWALFlushFailurePanics(t *testing.T) {
	acct, pool, space := newTestPool(t, MinPoolFrames)
	lg := &stubLogger{err: errors.New("log device gone")}
	acct.SetPageLogger(lg)
	defer acct.SetPageLogger(nil)

	lg.setAppended(3)
	pool.NewPage(space, 0, &testPage{Vals: []int64{1}})
	pool.Unpin(space, 0, true)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic when WAL flush fails during eviction")
		}
		if acct.Stats().PhysWrites != 0 {
			t.Fatal("page image written back despite WAL flush failure")
		}
	}()
	pool.EvictAll()
}

// Without a logger attached the write path is unchanged — no stamping,
// no flush calls, pure pre-WAL behavior.
func TestNoLoggerMeansNoFlushes(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 0, &testPage{Vals: []int64{1}})
	pool.Unpin(space, 0, true)
	pool.EvictAll()
	p := pool.Get(space, 0).(*testPage)
	if p.Vals[0] != 1 {
		t.Fatalf("round trip without logger corrupted page: %+v", p)
	}
	pool.Unpin(space, 0, false)
}

// A corrupted backing-store image is detected by checksum on the next
// read and surfaces as *CorruptPageError, not as silently misdecoded
// page contents.
func TestCorruptPageImageDetected(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 0, &testPage{Vals: []int64{1, 2, 3}})
	pool.Unpin(space, 0, true)
	pool.EvictAll()

	// Flip one payload byte of the evicted image in the backing file.
	pool.mu.Lock()
	sp, ok := pool.spans[pageKey{space, 0}]
	pool.mu.Unlock()
	if !ok {
		t.Fatal("evicted page has no backing extent")
	}
	if _, err := pool.file.WriteAt([]byte{0xFF}, sp.off+pageImageHeader+2); err != nil {
		t.Fatal(err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected *CorruptPageError panic reading a corrupt image")
		}
		cpe, ok := r.(*CorruptPageError)
		if !ok {
			t.Fatalf("panic value %T, want *CorruptPageError", r)
		}
		if cpe.Space != space || cpe.Page != 0 {
			t.Fatalf("error names page %d in space %d, want 0 in %d", cpe.Page, cpe.Space, space)
		}
	}()
	pool.Get(space, 0)
}

// A torn (short) image — the header promising more payload than the
// span holds — is likewise detected rather than gob-decoded.
func TestTornPageImageDetected(t *testing.T) {
	_, pool, space := newTestPool(t, MinPoolFrames)
	pool.NewPage(space, 0, &testPage{Vals: []int64{1, 2, 3}})
	pool.Unpin(space, 0, true)
	pool.EvictAll()

	// Shorten the span in place, simulating a torn write that persisted
	// only a prefix of the image.
	pool.mu.Lock()
	k := pageKey{space, 0}
	sp := pool.spans[k]
	sp.len = pageImageHeader + 3
	pool.spans[k] = sp
	pool.mu.Unlock()

	defer func() {
		if _, ok := recover().(*CorruptPageError); !ok {
			t.Fatal("expected *CorruptPageError panic reading a torn image")
		}
	}()
	pool.Get(space, 0)
}
