package pager

import (
	"sync"
	"testing"
	"time"
)

func TestAccountantCounts(t *testing.T) {
	var a Accountant
	a.Read(3)
	a.Write(2)
	s := a.Stats()
	if s.PageReads != 3 || s.PageWrites != 2 || s.Total() != 5 {
		t.Errorf("Stats = %+v", s)
	}
	a.Reset()
	if s := a.Stats(); s.Total() != 0 {
		t.Errorf("after Reset: %+v", s)
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := Stats{PageReads: 10, PageWrites: 4}
	b := Stats{PageReads: 7, PageWrites: 1}
	d := a.Sub(b)
	if d.PageReads != 3 || d.PageWrites != 3 {
		t.Errorf("Sub = %+v", d)
	}
	if d.String() != "reads=3 writes=3" {
		t.Errorf("String = %q", d.String())
	}
}

func TestNilAccountantIsNoop(t *testing.T) {
	var a *Accountant
	a.Read(1) // must not panic
	a.Write(1)
	a.Reset()
	if s := a.Stats(); s.Total() != 0 {
		t.Errorf("nil Stats = %+v", s)
	}
}

func TestReadDelay(t *testing.T) {
	var a Accountant
	a.SetReadDelay(2 * time.Millisecond)
	start := time.Now()
	a.Read(3)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("delay not applied: %v", el)
	}
	a.SetReadDelay(0)
	start = time.Now()
	a.Read(100)
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("delay not cleared: %v", el)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var a Accountant
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Read(1)
				a.Write(1)
			}
		}()
	}
	wg.Wait()
	if s := a.Stats(); s.PageReads != 8000 || s.PageWrites != 8000 {
		t.Errorf("concurrent Stats = %+v", s)
	}
}
