package pager

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// catchFault runs fn and returns the *FaultError it panicked with, or
// nil when it completed.
func catchFault(fn func()) (fe *FaultError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if fe, ok = r.(*FaultError); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func TestFailFirstReadsIsTransient(t *testing.T) {
	a := &Accountant{}
	a.SetFaultPolicy(&FaultPolicy{FailFirstReads: 3})
	for i := 0; i < 3; i++ {
		fe := catchFault(func() { a.Read(1) })
		if fe == nil {
			t.Fatalf("read %d: expected injected fault", i+1)
		}
		if fe.Op != "read" || fe.Seq != int64(i+1) {
			t.Fatalf("read %d: got %+v", i+1, fe)
		}
	}
	// The outage has cleared: subsequent reads succeed.
	for i := 0; i < 10; i++ {
		if fe := catchFault(func() { a.Read(1) }); fe != nil {
			t.Fatalf("post-outage read faulted: %v", fe)
		}
	}
	if got := a.Stats().PageReads; got != 13 {
		t.Fatalf("faulted reads must still be counted: got %d, want 13", got)
	}
}

func TestEveryKthWriteIsDeterministic(t *testing.T) {
	a := &Accountant{}
	a.SetFaultPolicy(&FaultPolicy{EveryKthWrite: 4})
	for i := 1; i <= 20; i++ {
		fe := catchFault(func() { a.Write(1) })
		if (i%4 == 0) != (fe != nil) {
			t.Fatalf("write %d: fault=%v, want fault iff multiple of 4", i, fe)
		}
	}
}

func TestSeededProbabilityIsReproducible(t *testing.T) {
	sequence := func() []bool {
		a := &Accountant{}
		a.SetFaultPolicy(&FaultPolicy{ReadProb: 0.5, Seed: 42})
		out := make([]bool, 64)
		for i := range out {
			out[i] = catchFault(func() { a.Read(1) }) != nil
		}
		return out
	}
	first, second := sequence(), sequence()
	faults := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d: same seed produced different outcomes", i)
		}
		if first[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(first) {
		t.Fatalf("p=0.5 produced %d/%d faults", faults, len(first))
	}
}

func TestInjectedLatency(t *testing.T) {
	a := &Accountant{}
	a.SetFaultPolicy(&FaultPolicy{Latency: 2 * time.Millisecond})
	start := time.Now()
	a.Read(3)
	if el := time.Since(start); el < 6*time.Millisecond {
		t.Fatalf("3 reads at 2ms injected latency took only %v", el)
	}
	a.SetFaultPolicy(nil)
	start = time.Now()
	a.Read(3)
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("cleared policy still sleeping: %v", el)
	}
}

func TestFaultErrorIsTyped(t *testing.T) {
	var err error = &FaultError{Op: "read", Seq: 7}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Seq != 7 {
		t.Fatalf("errors.As failed on %v", err)
	}
}

// TestSetReadDelayConcurrent exercises SetReadDelay (and
// SetFaultPolicy) racing live readers; run with -race. The Accountant
// documents all its methods as safe for concurrent use because the
// delay and policy are atomics.
func TestSetReadDelayConcurrent(t *testing.T) {
	a := &Accountant{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Read(1)
				a.Write(1)
				a.Stats()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		a.SetReadDelay(time.Duration(i%3) * time.Microsecond)
		if i%10 == 0 {
			a.SetFaultPolicy(&FaultPolicy{Latency: time.Microsecond})
			a.SetFaultPolicy(nil)
		}
	}
	close(stop)
	wg.Wait()
	a.SetReadDelay(0)
}
