package heap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pager"
)

func TestRIDEncodeRoundTrip(t *testing.T) {
	f := func(page, slot int32) bool {
		r := RID{Page: page, Slot: slot}
		return DecodeRID(r.Encode()) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	if (RID{Page: 3, Slot: 7}).String() != "3:7" {
		t.Error("RID.String")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[string](&acct, 4)
	rid := f.Insert(100, "hello")
	if oid, v, ok := f.Get(rid); !ok || oid != 100 || v != "hello" {
		t.Fatalf("Get = %d %q %v", oid, v, ok)
	}
	if !f.Update(rid, "world") {
		t.Fatal("Update failed")
	}
	if _, v, _ := f.Get(rid); v != "world" {
		t.Errorf("after Update: %q", v)
	}
	if !f.Delete(rid) {
		t.Fatal("Delete failed")
	}
	if _, _, ok := f.Get(rid); ok {
		t.Error("Get after Delete should fail")
	}
	if f.Delete(rid) {
		t.Error("double Delete should fail")
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	f := NewFile[int](nil, 4)
	if _, _, ok := f.Get(RID{Page: 5, Slot: 0}); ok {
		t.Error("Get beyond pages should fail")
	}
	if f.Update(RID{Page: 0, Slot: 0}, 1) {
		t.Error("Update on empty file should fail")
	}
	if f.Delete(RID{Page: -1, Slot: 0}) {
		t.Error("Delete with negative page should fail")
	}
	rid := f.Insert(1, 42)
	if _, _, ok := f.Get(RID{Page: rid.Page, Slot: 99}); ok {
		t.Error("Get with bad slot should fail")
	}
}

func TestPagingAndScan(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 10)
	for i := 0; i < 95; i++ {
		f.Insert(int64(i), i*i)
	}
	if f.Pages() != 10 {
		t.Errorf("Pages = %d, want 10", f.Pages())
	}
	if f.PageCap() != 10 {
		t.Errorf("PageCap = %d", f.PageCap())
	}
	acct.Reset()
	var got []int64
	f.Scan(func(rid RID, oid int64, v int) bool {
		got = append(got, oid)
		return true
	})
	if len(got) != 95 {
		t.Fatalf("Scan visited %d", len(got))
	}
	// Full scan charges exactly one read per page.
	if s := acct.Stats(); s.PageReads != 10 {
		t.Errorf("scan reads = %d, want 10", s.PageReads)
	}
	// Early termination.
	n := 0
	f.Scan(func(RID, int64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early-stop scan visited %d", n)
	}
}

func TestIOAccounting(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 8)
	base := acct.Stats()
	rid := f.Insert(1, 10)
	if d := acct.Stats().Sub(base); d.PageWrites != 1 || d.PageReads != 0 {
		t.Errorf("Insert cost: %+v", d)
	}
	base = acct.Stats()
	f.Get(rid)
	if d := acct.Stats().Sub(base); d.PageReads != 1 {
		t.Errorf("Get cost: %+v", d)
	}
	base = acct.Stats()
	f.Update(rid, 11)
	if d := acct.Stats().Sub(base); d.PageReads != 1 || d.PageWrites != 1 {
		t.Errorf("Update cost: %+v", d)
	}
}

func TestDefaultPageCap(t *testing.T) {
	f := NewFile[int](nil, 0)
	if f.PageCap() != 64 {
		t.Errorf("default PageCap = %d", f.PageCap())
	}
	if f.Accountant() != nil {
		t.Error("nil accountant should be preserved")
	}
}

func TestCursorIteratesLiveRecords(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 4)
	var rids []RID
	for i := 0; i < 18; i++ {
		rids = append(rids, f.Insert(int64(i), i*10))
	}
	// Delete a few, including a whole middle page (records 4..7).
	for _, i := range []int{4, 5, 6, 7, 17} {
		f.Delete(rids[i])
	}
	acct.Reset()
	cur := f.Cursor()
	var got []int64
	for {
		_, oid, v, ok := cur.Next()
		if !ok {
			break
		}
		if v != int(oid)*10 {
			t.Fatalf("oid %d carries %d", oid, v)
		}
		got = append(got, oid)
	}
	if len(got) != 13 {
		t.Fatalf("cursor visited %d records", len(got))
	}
	for _, oid := range got {
		if oid >= 4 && oid <= 7 || oid == 17 {
			t.Fatalf("deleted record %d visited", oid)
		}
	}
	// One page read per visited page (5 pages allocated).
	if r := acct.Stats().PageReads; r != int64(f.Pages()) {
		t.Errorf("cursor reads = %d, pages = %d", r, f.Pages())
	}
	// Exhausted cursor stays exhausted.
	if _, _, _, ok := cur.Next(); ok {
		t.Error("cursor resurrected")
	}
	// Cursor on an empty file.
	empty := NewFile[int](nil, 4)
	if _, _, _, ok := empty.Cursor().Next(); ok {
		t.Error("empty cursor returned a record")
	}
}

// Property: against a reference map, random insert/update/delete
// sequences keep Get and Scan consistent.
func TestFileMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var acct pager.Accountant
	f := NewFile[int](&acct, 7)
	ref := map[int64]int{}  // oid -> value
	rids := map[int64]RID{} // oid -> rid
	nextOID := int64(1)

	for step := 0; step < 3000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert
			oid := nextOID
			nextOID++
			v := rng.Intn(1000)
			rids[oid] = f.Insert(oid, v)
			ref[oid] = v
		case 2: // update
			for oid := range ref {
				v := rng.Intn(1000)
				if !f.Update(rids[oid], v) {
					t.Fatalf("step %d: update %d failed", step, oid)
				}
				ref[oid] = v
				break
			}
		case 3: // delete
			for oid := range ref {
				if !f.Delete(rids[oid]) {
					t.Fatalf("step %d: delete %d failed", step, oid)
				}
				delete(ref, oid)
				delete(rids, oid)
				break
			}
		}
	}
	if f.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", f.Len(), len(ref))
	}
	for oid, want := range ref {
		gotOID, got, ok := f.Get(rids[oid])
		if !ok || gotOID != oid || got != want {
			t.Fatalf("Get(%d) = %d,%d,%v want %d", oid, gotOID, got, ok, want)
		}
	}
	seen := map[int64]int{}
	f.Scan(func(rid RID, oid int64, v int) bool {
		seen[oid] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Scan found %d, want %d", len(seen), len(ref))
	}
	for oid, v := range ref {
		if seen[oid] != v {
			t.Fatalf("Scan mismatch for %d: %d != %d", oid, seen[oid], v)
		}
	}
}

// TestPagesBoundedUnderChurn is the free-list regression test: before
// Delete re-offered pages and trimmed tombstoned tail slots, every
// insert/delete cycle leaked its pages and the file grew monotonically.
func TestPagesBoundedUnderChurn(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 8)
	const perCycle = 100
	for cycle := 0; cycle < 50; cycle++ {
		var rids []RID
		for i := 0; i < perCycle; i++ {
			rids = append(rids, f.Insert(int64(cycle*perCycle+i), i))
		}
		for _, rid := range rids {
			if !f.Delete(rid) {
				t.Fatalf("cycle %d: delete %v failed", cycle, rid)
			}
		}
	}
	// 100 records at 8/page is 13 pages; without space reuse the file
	// would hold 50x that.
	if f.Pages() > 2*((perCycle+7)/8) {
		t.Fatalf("Pages = %d after churn, want bounded near %d", f.Pages(), (perCycle+7)/8)
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", f.Len())
	}
	// Interleaved churn: keep a live working set while half the
	// inserts are deleted again.
	live := map[int64]RID{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		oid := int64(1_000_000 + i)
		live[oid] = f.Insert(oid, i)
		if len(live) > 50 {
			for victim, rid := range live {
				if rng.Intn(2) == 0 {
					f.Delete(rid)
					delete(live, victim)
				}
			}
		}
	}
	if f.Pages() > 40 {
		t.Fatalf("Pages = %d with a ~50-record working set at 8/page", f.Pages())
	}
}

// TestPooledFileMatchesUnpooled drives the same operation sequence
// through a buffer-pooled file (at a frame budget far below the page
// count, forcing eviction round trips) and a plain one, asserting
// identical contents, identical RID assignment, and identical logical
// I/O counters — the identity-when-disabled invariant from the other
// side.
func TestPooledFileMatchesUnpooled(t *testing.T) {
	var plainAcct pager.Accountant
	plain := NewFile[string](&plainAcct, 5)

	var poolAcct pager.Accountant
	pool := pager.NewBufferPool(&poolAcct, pager.MinPoolFrames)
	defer pool.Close()
	pooled := NewFile[string](&poolAcct, 5)

	rng := rand.New(rand.NewSource(99))
	var rids []RID
	val := func(oid int64) string { return fmt.Sprintf("v%d", oid) }
	for step := 0; step < 4000; step++ {
		switch {
		case len(rids) == 0 || rng.Intn(10) < 5: // insert
			oid := int64(step)
			r1 := plain.Insert(oid, val(oid))
			r2 := pooled.Insert(oid, val(oid))
			if r1 != r2 {
				t.Fatalf("step %d: RID divergence %v vs %v", step, r1, r2)
			}
			rids = append(rids, r1)
		case rng.Intn(10) < 7: // update
			rid := rids[rng.Intn(len(rids))]
			v := fmt.Sprintf("u%d", step)
			if plain.Update(rid, v) != pooled.Update(rid, v) {
				t.Fatalf("step %d: Update divergence at %v", step, rid)
			}
		default: // delete
			i := rng.Intn(len(rids))
			rid := rids[i]
			if plain.Delete(rid) != pooled.Delete(rid) {
				t.Fatalf("step %d: Delete divergence at %v", step, rid)
			}
			rids = append(rids[:i], rids[i+1:]...)
		}
	}
	if plain.Len() != pooled.Len() || plain.Pages() != pooled.Pages() {
		t.Fatalf("shape divergence: len %d/%d pages %d/%d",
			plain.Len(), pooled.Len(), plain.Pages(), pooled.Pages())
	}
	type rec struct {
		rid RID
		oid int64
		v   string
	}
	collect := func(f *File[string]) []rec {
		var out []rec
		f.Scan(func(rid RID, oid int64, v string) bool {
			out = append(out, rec{rid, oid, v})
			return true
		})
		return out
	}
	a, b := collect(plain), collect(pooled)
	if len(a) != len(b) {
		t.Fatalf("scan lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Logical I/O must be identical; the pooled run must additionally
	// have paid real physical traffic at this frame budget.
	ps, bs := plainAcct.Stats(), poolAcct.Stats()
	if ps.PageReads != bs.PageReads || ps.PageWrites != bs.PageWrites {
		t.Fatalf("logical counters diverge: plain %+v pooled %+v", ps, bs)
	}
	if pooled.Pages() > pager.MinPoolFrames && (bs.Evictions == 0 || bs.PhysReads == 0) {
		t.Fatalf("expected eviction churn at %d pages in %d frames: %+v",
			pooled.Pages(), pager.MinPoolFrames, bs)
	}
	if ps.CacheAccesses() != 0 {
		t.Fatalf("plain file generated cache traffic: %+v", ps)
	}
}

// TestCursorCloseUnpinsMidPage verifies an abandoned pooled cursor
// releases its pin so the page stays evictable.
func TestCursorCloseUnpinsMidPage(t *testing.T) {
	var acct pager.Accountant
	pool := pager.NewBufferPool(&acct, pager.MinPoolFrames)
	defer pool.Close()
	f := NewFile[int](&acct, 4)
	for i := 0; i < 4*4; i++ {
		f.Insert(int64(i), i)
	}
	cur := f.Cursor()
	if _, _, _, ok := cur.Next(); !ok {
		t.Fatal("cursor empty")
	}
	cur.Close()
	cur.Close() // idempotent
	// With the pin released, churning more pages than frames through the
	// pool must not panic on exhaustion.
	for i := 0; i < 3*pager.MinPoolFrames; i++ {
		f.Insert(int64(100+i), i)
	}
	if st := pool.Stats(); st.MaxResident > st.Frames {
		t.Fatalf("residency exceeded budget: %+v", st)
	}
}

// TestFetchManyGroupsByPage checks the batched dereference: consecutive
// same-page RIDs share one logical read, dead and out-of-range entries
// are skipped silently, and the returned count is the pages pinned.
func TestFetchManyGroupsByPage(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 4)
	var rids []RID
	for i := 0; i < 20; i++ {
		rids = append(rids, f.Insert(int64(i), i*10))
	}
	f.Delete(rids[5])

	req := []RID{
		rids[0], rids[2], // page 0, one read
		rids[5],                      // page 1, dead — read but not visited
		rids[9], {Page: 2, Slot: 99}, // page 2 run with a bad slot
		{Page: 99, Slot: 0}, // beyond the file: skipped, no read
		{Page: -1, Slot: 0}, // negative page: skipped, no read
		rids[17],            // page 4
	}
	before := acct.Stats()
	var got []int
	reads := f.FetchMany(req, func(_ RID, oid int64, v int) bool {
		got = append(got, v)
		return true
	})
	if reads != 4 {
		t.Errorf("reads = %d, want 4 (pages 0,1,2,4)", reads)
	}
	if d := acct.Stats().Sub(before); d.PageReads != int64(reads) {
		t.Errorf("accounted %d logical reads, FetchMany reported %d", d.PageReads, reads)
	}
	want := []int{0, 20, 90, 170}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}

	// fn returning false stops after the current page run.
	n := 0
	reads = f.FetchMany([]RID{rids[0], rids[8], rids[16]}, func(RID, int64, int) bool {
		n++
		return false
	})
	if n != 1 || reads != 1 {
		t.Errorf("early stop visited %d rows over %d reads, want 1/1", n, reads)
	}
}

// TestHeapPrefetchWarmsPool checks the pool hand-off: prefetched pages
// are installed unpinned and the demand fetch that follows hits the
// cache instead of the backing store. Without a pool Prefetch is a
// no-op.
func TestHeapPrefetchWarmsPool(t *testing.T) {
	plain := NewFile[int](nil, 4)
	plain.Insert(1, 1)
	plain.Prefetch([]int32{0, 5}) // must not panic or allocate frames

	var acct pager.Accountant
	pool := pager.NewBufferPool(&acct, pager.MinPoolFrames)
	defer pool.Close()
	f := NewFile[int](&acct, 4)
	var rids []RID
	for i := 0; i < 4*4; i++ {
		rids = append(rids, f.Insert(int64(i), i))
	}
	pool.EvictAll()

	before := acct.Stats()
	f.Prefetch([]int32{0, 1, 2, 99}) // out-of-range page filtered out
	mid := acct.Stats().Sub(before)
	if mid.Prefetched != 3 || mid.PhysReads != 3 {
		t.Fatalf("prefetch stats = %+v, want 3 prefetched/3 phys", mid)
	}
	got := 0
	f.FetchMany(rids[:12], func(_ RID, _ int64, v int) bool { got++; return true })
	after := acct.Stats().Sub(before)
	if after.PhysReads != 3 {
		t.Errorf("demand fetch of prefetched pages paid %d physical reads, want 3", after.PhysReads)
	}
	if got != 12 {
		t.Errorf("fetched %d rows, want 12", got)
	}
}
