package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pager"
)

func TestRIDEncodeRoundTrip(t *testing.T) {
	f := func(page, slot int32) bool {
		r := RID{Page: page, Slot: slot}
		return DecodeRID(r.Encode()) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	if (RID{Page: 3, Slot: 7}).String() != "3:7" {
		t.Error("RID.String")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[string](&acct, 4)
	rid := f.Insert(100, "hello")
	if oid, v, ok := f.Get(rid); !ok || oid != 100 || v != "hello" {
		t.Fatalf("Get = %d %q %v", oid, v, ok)
	}
	if !f.Update(rid, "world") {
		t.Fatal("Update failed")
	}
	if _, v, _ := f.Get(rid); v != "world" {
		t.Errorf("after Update: %q", v)
	}
	if !f.Delete(rid) {
		t.Fatal("Delete failed")
	}
	if _, _, ok := f.Get(rid); ok {
		t.Error("Get after Delete should fail")
	}
	if f.Delete(rid) {
		t.Error("double Delete should fail")
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	f := NewFile[int](nil, 4)
	if _, _, ok := f.Get(RID{Page: 5, Slot: 0}); ok {
		t.Error("Get beyond pages should fail")
	}
	if f.Update(RID{Page: 0, Slot: 0}, 1) {
		t.Error("Update on empty file should fail")
	}
	if f.Delete(RID{Page: -1, Slot: 0}) {
		t.Error("Delete with negative page should fail")
	}
	rid := f.Insert(1, 42)
	if _, _, ok := f.Get(RID{Page: rid.Page, Slot: 99}); ok {
		t.Error("Get with bad slot should fail")
	}
}

func TestPagingAndScan(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 10)
	for i := 0; i < 95; i++ {
		f.Insert(int64(i), i*i)
	}
	if f.Pages() != 10 {
		t.Errorf("Pages = %d, want 10", f.Pages())
	}
	if f.PageCap() != 10 {
		t.Errorf("PageCap = %d", f.PageCap())
	}
	acct.Reset()
	var got []int64
	f.Scan(func(rid RID, oid int64, v int) bool {
		got = append(got, oid)
		return true
	})
	if len(got) != 95 {
		t.Fatalf("Scan visited %d", len(got))
	}
	// Full scan charges exactly one read per page.
	if s := acct.Stats(); s.PageReads != 10 {
		t.Errorf("scan reads = %d, want 10", s.PageReads)
	}
	// Early termination.
	n := 0
	f.Scan(func(RID, int64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early-stop scan visited %d", n)
	}
}

func TestIOAccounting(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 8)
	base := acct.Stats()
	rid := f.Insert(1, 10)
	if d := acct.Stats().Sub(base); d.PageWrites != 1 || d.PageReads != 0 {
		t.Errorf("Insert cost: %+v", d)
	}
	base = acct.Stats()
	f.Get(rid)
	if d := acct.Stats().Sub(base); d.PageReads != 1 {
		t.Errorf("Get cost: %+v", d)
	}
	base = acct.Stats()
	f.Update(rid, 11)
	if d := acct.Stats().Sub(base); d.PageReads != 1 || d.PageWrites != 1 {
		t.Errorf("Update cost: %+v", d)
	}
}

func TestDefaultPageCap(t *testing.T) {
	f := NewFile[int](nil, 0)
	if f.PageCap() != 64 {
		t.Errorf("default PageCap = %d", f.PageCap())
	}
	if f.Accountant() != nil {
		t.Error("nil accountant should be preserved")
	}
}

func TestCursorIteratesLiveRecords(t *testing.T) {
	var acct pager.Accountant
	f := NewFile[int](&acct, 4)
	var rids []RID
	for i := 0; i < 18; i++ {
		rids = append(rids, f.Insert(int64(i), i*10))
	}
	// Delete a few, including a whole middle page (records 4..7).
	for _, i := range []int{4, 5, 6, 7, 17} {
		f.Delete(rids[i])
	}
	acct.Reset()
	cur := f.Cursor()
	var got []int64
	for {
		_, oid, v, ok := cur.Next()
		if !ok {
			break
		}
		if v != int(oid)*10 {
			t.Fatalf("oid %d carries %d", oid, v)
		}
		got = append(got, oid)
	}
	if len(got) != 13 {
		t.Fatalf("cursor visited %d records", len(got))
	}
	for _, oid := range got {
		if oid >= 4 && oid <= 7 || oid == 17 {
			t.Fatalf("deleted record %d visited", oid)
		}
	}
	// One page read per visited page (5 pages allocated).
	if r := acct.Stats().PageReads; r != int64(f.Pages()) {
		t.Errorf("cursor reads = %d, pages = %d", r, f.Pages())
	}
	// Exhausted cursor stays exhausted.
	if _, _, _, ok := cur.Next(); ok {
		t.Error("cursor resurrected")
	}
	// Cursor on an empty file.
	empty := NewFile[int](nil, 4)
	if _, _, _, ok := empty.Cursor().Next(); ok {
		t.Error("empty cursor returned a record")
	}
}

// Property: against a reference map, random insert/update/delete
// sequences keep Get and Scan consistent.
func TestFileMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var acct pager.Accountant
	f := NewFile[int](&acct, 7)
	ref := map[int64]int{}  // oid -> value
	rids := map[int64]RID{} // oid -> rid
	nextOID := int64(1)

	for step := 0; step < 3000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert
			oid := nextOID
			nextOID++
			v := rng.Intn(1000)
			rids[oid] = f.Insert(oid, v)
			ref[oid] = v
		case 2: // update
			for oid := range ref {
				v := rng.Intn(1000)
				if !f.Update(rids[oid], v) {
					t.Fatalf("step %d: update %d failed", step, oid)
				}
				ref[oid] = v
				break
			}
		case 3: // delete
			for oid := range ref {
				if !f.Delete(rids[oid]) {
					t.Fatalf("step %d: delete %d failed", step, oid)
				}
				delete(ref, oid)
				delete(rids, oid)
				break
			}
		}
	}
	if f.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", f.Len(), len(ref))
	}
	for oid, want := range ref {
		gotOID, got, ok := f.Get(rids[oid])
		if !ok || gotOID != oid || got != want {
			t.Fatalf("Get(%d) = %d,%d,%v want %d", oid, gotOID, got, ok, want)
		}
	}
	seen := map[int64]int{}
	f.Scan(func(rid RID, oid int64, v int) bool {
		seen[oid] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Scan found %d, want %d", len(seen), len(ref))
	}
	for oid, v := range ref {
		if seen[oid] != v {
			t.Fatalf("Scan mismatch for %d: %d != %d", oid, seen[oid], v)
		}
	}
}
