// Package heap implements slotted-page heap files, the base storage of
// every relation: user tables, the de-normalized R_SummaryStorage side
// tables, and the raw-annotation store. Records are addressed by RID
// (page, slot); page accesses are charged to a pager.Accountant so that
// access-path costs are observable.
//
// When the accountant has a buffer pool attached, pages live in pool
// frames instead of the file struct: every access pins the frame for the
// duration of the touch (cursors keep their current page pinned between
// Next calls and release it on advance or Close), mutations mark the
// frame dirty, and evicted pages round-trip through the pool's backing
// store. Without a pool the file keeps its pages resident directly and
// behaves exactly as before — only logical I/O is charged either way, at
// the same call sites, so access-path counts are identical in both modes.
package heap

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/pager"
)

// RID is a record's physical address: the heap location returned by the
// engine-internal diskTupleLoc() function and stored in Summary-BTree
// backward pointers.
type RID struct {
	Page int32
	Slot int32
}

// Encode packs the RID into an int64 for storage as an index payload.
func (r RID) Encode() int64 { return int64(r.Page)<<32 | int64(uint32(r.Slot)) }

// DecodeRID unpacks an int64 produced by Encode.
func DecodeRID(v int64) RID {
	return RID{Page: int32(v >> 32), Slot: int32(uint32(v))}
}

// String renders "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// record is one slot: the record's OID, its payload, and a liveness flag.
type record[T any] struct {
	oid  int64
	val  T
	live bool
}

type page[T any] struct {
	slots []record[T]
	nLive int
}

// pageWire is the serialized form of a page. Only live slots carry a
// value: gob cannot encode nil pointers, and tombstoned slots of pointer
// payload types hold exactly that, so dead slots are reconstructed as
// zero values from the liveness bitmap on decode.
type pageWire[T any] struct {
	OIDs []int64
	Live []bool
	Vals []T // live slots only, in slot order
}

// pageCodec serializes heap pages for buffer-pool write-back.
type pageCodec[T any] struct{}

func (pageCodec[T]) EncodePage(v any) ([]byte, error) {
	p := v.(*page[T])
	w := pageWire[T]{
		OIDs: make([]int64, len(p.slots)),
		Live: make([]bool, len(p.slots)),
	}
	for i := range p.slots {
		w.OIDs[i] = p.slots[i].oid
		w.Live[i] = p.slots[i].live
		if p.slots[i].live {
			w.Vals = append(w.Vals, p.slots[i].val)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (pageCodec[T]) DecodePage(data []byte) (any, error) {
	var w pageWire[T]
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	// Structural validation: a torn or bit-flipped page image that still
	// gob-decodes must not be installed silently — the inconsistency
	// would otherwise surface later as a wrong answer instead of an
	// integrity error here.
	if len(w.Live) != len(w.OIDs) {
		return nil, fmt.Errorf("heap: corrupt page image: %d oids but %d liveness flags", len(w.OIDs), len(w.Live))
	}
	live := 0
	for _, l := range w.Live {
		if l {
			live++
		}
	}
	if live != len(w.Vals) {
		return nil, fmt.Errorf("heap: corrupt page image: %d live slots but %d values", live, len(w.Vals))
	}
	p := &page[T]{slots: make([]record[T], len(w.OIDs))}
	vi := 0
	for i := range w.OIDs {
		p.slots[i].oid = w.OIDs[i]
		if w.Live[i] {
			p.slots[i].live = true
			p.slots[i].val = w.Vals[vi]
			vi++
			p.nLive++
		}
	}
	return p, nil
}

// File is a heap file of records of type T. Records are identified
// logically by OID (assigned by the caller) and physically by RID. The
// zero File is not usable; construct with NewFile. File is not safe for
// concurrent mutation.
type File[T any] struct {
	acct    *pager.Accountant
	pageCap int

	// pool/space route page access through buffer-pool frames when the
	// accountant has a pool attached; used tracks each page's slot count
	// so capacity checks never need to pin a frame. Without a pool,
	// pages holds the file's pages resident and used is unused.
	pool  *pager.BufferPool
	space int32
	used  []int32
	pages []*page[T]

	nLive int
	// freePages lists pages with spare capacity: a page is re-offered
	// after a delete trims tombstoned slots from its tail, and popped
	// once it fills back up. freeSet dedups offers.
	freePages []int32
	freeSet   map[int32]bool
}

// NewFile builds a heap file whose pages hold pageCap records each
// (the paper's "disk page size in records" parameter B). If acct has a
// buffer pool attached, the file registers its own page space with it.
func NewFile[T any](acct *pager.Accountant, pageCap int) *File[T] {
	if pageCap <= 0 {
		pageCap = 64
	}
	f := &File[T]{acct: acct, pageCap: pageCap}
	if pool := acct.Pool(); pool != nil {
		f.pool = pool
		f.space = pool.NewSpace(pageCodec[T]{})
	}
	return f
}

func (f *File[T]) pooled() bool { return f.pool != nil }

// pin returns pid's page, pinned in its frame; callers must unpin.
func (f *File[T]) pin(pid int32) *page[T] {
	return f.pool.Get(f.space, int64(pid)).(*page[T])
}

func (f *File[T]) unpin(pid int32, dirty bool) {
	f.pool.Unpin(f.space, int64(pid), dirty)
}

func (f *File[T]) numPages() int {
	if f.pooled() {
		return len(f.used)
	}
	return len(f.pages)
}

// slotsOn returns pid's slot count without touching the page itself.
func (f *File[T]) slotsOn(pid int32) int {
	if f.pooled() {
		return int(f.used[pid])
	}
	return len(f.pages[pid].slots)
}

// Insert appends a record and returns its RID. The page written is
// charged as one page write.
func (f *File[T]) Insert(oid int64, val T) RID {
	pid, fresh := f.pageWithSpace()
	rec := record[T]{oid: oid, val: val, live: true}
	var slot int32
	if f.pooled() {
		var p *page[T]
		if fresh {
			p = &page[T]{}
			f.pool.NewPage(f.space, int64(pid), p)
		} else {
			p = f.pin(pid)
		}
		p.slots = append(p.slots, rec)
		p.nLive++
		slot = int32(len(p.slots) - 1)
		f.used[pid] = int32(len(p.slots))
		f.unpin(pid, true)
	} else {
		p := f.pages[pid]
		p.slots = append(p.slots, rec)
		p.nLive++
		slot = int32(len(p.slots) - 1)
	}
	f.nLive++
	f.acct.Write(1)
	return RID{Page: pid, Slot: slot}
}

// pageWithSpace picks the page the next insert lands on: a re-offered
// page with spare capacity, then the last page, then a fresh page
// (fresh=true means the caller must materialize it).
func (f *File[T]) pageWithSpace() (pid int32, fresh bool) {
	for len(f.freePages) > 0 {
		pid := f.freePages[len(f.freePages)-1]
		if f.slotsOn(pid) < f.pageCap {
			return pid, false
		}
		f.freePages = f.freePages[:len(f.freePages)-1]
		delete(f.freeSet, pid)
	}
	if n := f.numPages(); n > 0 && f.slotsOn(int32(n-1)) < f.pageCap {
		return int32(n - 1), false
	}
	if f.pooled() {
		f.used = append(f.used, 0)
		return int32(len(f.used) - 1), true
	}
	f.pages = append(f.pages, &page[T]{})
	return int32(len(f.pages) - 1), false
}

// Get reads the record at rid, charging one page read.
func (f *File[T]) Get(rid RID) (oid int64, val T, ok bool) {
	var zero T
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return 0, zero, false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return 0, zero, false
	}
	f.acct.Read(1)
	var rec record[T]
	if f.pooled() {
		p := f.pin(rid.Page)
		rec = p.slots[rid.Slot]
		f.unpin(rid.Page, false)
	} else {
		rec = f.pages[rid.Page].slots[rid.Slot]
	}
	if !rec.live {
		return 0, zero, false
	}
	return rec.oid, rec.val, true
}

// Update replaces the record at rid in place, charging one page read and
// one page write.
func (f *File[T]) Update(rid RID, val T) bool {
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return false
	}
	if f.pooled() {
		p := f.pin(rid.Page)
		if !p.slots[rid.Slot].live {
			f.unpin(rid.Page, false)
			return false
		}
		f.acct.Read(1)
		f.acct.Write(1)
		p.slots[rid.Slot].val = val
		f.unpin(rid.Page, true)
		return true
	}
	p := f.pages[rid.Page]
	if !p.slots[rid.Slot].live {
		return false
	}
	f.acct.Read(1)
	f.acct.Write(1)
	p.slots[rid.Slot].val = val
	return true
}

// Delete tombstones the record at rid, charging one page read and write.
// Live RIDs stay stable, but tombstoned slots at the page's tail are
// trimmed so later inserts can reuse them, and the page is re-offered to
// the free list when it has spare capacity — under insert/delete churn
// the file's page count stays bounded instead of growing monotonically.
func (f *File[T]) Delete(rid RID) bool {
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return false
	}
	if f.pooled() {
		p := f.pin(rid.Page)
		if !p.slots[rid.Slot].live {
			f.unpin(rid.Page, false)
			return false
		}
		f.acct.Read(1)
		f.acct.Write(1)
		f.tombstone(p, rid.Slot)
		f.used[rid.Page] = int32(len(p.slots))
		f.unpin(rid.Page, true)
	} else {
		p := f.pages[rid.Page]
		if !p.slots[rid.Slot].live {
			return false
		}
		f.acct.Read(1)
		f.acct.Write(1)
		f.tombstone(p, rid.Slot)
	}
	f.offerFree(rid.Page)
	return true
}

// tombstone kills one slot and trims any dead run off the page's tail so
// those slot numbers become reusable.
func (f *File[T]) tombstone(p *page[T], slot int32) {
	p.slots[slot] = record[T]{}
	p.nLive--
	f.nLive--
	n := len(p.slots)
	for n > 0 && !p.slots[n-1].live {
		n--
	}
	for i := n; i < len(p.slots); i++ {
		p.slots[i] = record[T]{}
	}
	p.slots = p.slots[:n]
}

// offerFree re-offers pid to the insert path when it has spare capacity
// and is not already on the free list.
func (f *File[T]) offerFree(pid int32) {
	if f.slotsOn(pid) >= f.pageCap || f.freeSet[pid] {
		return
	}
	if f.freeSet == nil {
		f.freeSet = make(map[int32]bool)
	}
	f.freeSet[pid] = true
	f.freePages = append(f.freePages, pid)
}

// Scan iterates all live records in physical order, charging one page
// read per visited page. Iteration stops early when fn returns false.
func (f *File[T]) Scan(fn func(rid RID, oid int64, val T) bool) {
	for pi := 0; pi < f.numPages(); pi++ {
		f.acct.Read(1)
		if !f.scanPage(int32(pi), fn) {
			return
		}
	}
}

// scanPage visits pid's live slots with the page pinned for the duration.
func (f *File[T]) scanPage(pid int32, fn func(RID, int64, T) bool) bool {
	var p *page[T]
	if f.pooled() {
		p = f.pin(pid)
		defer f.unpin(pid, false)
	} else {
		p = f.pages[pid]
	}
	for si := range p.slots {
		rec := &p.slots[si]
		if !rec.live {
			continue
		}
		if !fn(RID{Page: pid, Slot: int32(si)}, rec.oid, rec.val) {
			return false
		}
	}
	return true
}

// FetchMany visits the records at the given RIDs, grouping consecutive
// same-page RIDs so each group costs one page read and one frame pin —
// the batched (bitmap-style) dereference path for index scans. Callers
// wanting minimal I/O sort the RIDs into page order first; FetchMany
// itself preserves the given order, so it also serves order-preserving
// fetches (each page run then has length 1 and the cost matches per-RID
// Get exactly). Out-of-range and tombstoned RIDs are skipped without
// calling fn; returning false from fn stops the fetch. The number of
// page reads charged (= pages pinned) is returned.
func (f *File[T]) FetchMany(rids []RID, fn func(rid RID, oid int64, val T) bool) int {
	reads := 0
	for i := 0; i < len(rids); {
		pid := rids[i].Page
		j := i
		for j < len(rids) && rids[j].Page == pid {
			j++
		}
		if pid < 0 || int(pid) >= f.numPages() {
			i = j
			continue
		}
		f.acct.Read(1)
		reads++
		var p *page[T]
		if f.pooled() {
			p = f.pin(pid)
		} else {
			p = f.pages[pid]
		}
		stop := false
		for _, rid := range rids[i:j] {
			if rid.Slot < 0 || int(rid.Slot) >= len(p.slots) {
				continue
			}
			rec := &p.slots[rid.Slot]
			if !rec.live {
				continue
			}
			if !fn(rid, rec.oid, rec.val) {
				stop = true
				break
			}
		}
		if f.pooled() {
			f.unpin(pid, false)
		}
		if stop {
			break
		}
		i = j
	}
	return reads
}

// Prefetch hints the buffer pool to warm the given pages ahead of a
// page-ordered fetch. No logical reads are charged (the fetch itself
// charges them on arrival); without a pool every page is already
// resident and this is a no-op.
func (f *File[T]) Prefetch(pids []int32) {
	if !f.pooled() {
		return
	}
	pages := make([]int64, 0, len(pids))
	for _, pid := range pids {
		if pid >= 0 && int(pid) < f.numPages() {
			pages = append(pages, int64(pid))
		}
	}
	f.pool.Prefetch(f.space, pages)
}

// Release drops the file's pages from the buffer pool (no-op without a
// pool). The file must not be used afterwards.
func (f *File[T]) Release() {
	if f.pooled() {
		f.pool.DropSpace(f.space)
	}
}

// Cursor is a pull-style iterator over a file's live records, charging
// one page read per visited page. Mutating the file invalidates open
// cursors. Reads are pure, so any number of cursors may run concurrently
// as long as the file is not mutated — with a buffer pool each cursor
// pins its current page independently, so callers must Close cursors
// they abandon before exhaustion.
type Cursor[T any] struct {
	f        *File[T]
	page     int
	end      int // exclusive page bound
	slot     int
	readPage bool
	cur      *page[T] // current page, pinned while non-nil in pooled mode
	pinned   bool
}

// Cursor returns a cursor positioned before the first record.
func (f *File[T]) Cursor() *Cursor[T] { return &Cursor[T]{f: f, end: f.numPages()} }

// RangeCursor returns a cursor over the half-open page range
// [startPage, endPage), clamped to the file. Consecutive ranges
// produced by splitting [0, Pages()) partition the file: every live
// record is visited by exactly one cursor, in the same global order a
// full Cursor would use — the basis of the executor's parallel scan.
func (f *File[T]) RangeCursor(startPage, endPage int) *Cursor[T] {
	if startPage < 0 {
		startPage = 0
	}
	if endPage > f.numPages() {
		endPage = f.numPages()
	}
	return &Cursor[T]{f: f, page: startPage, end: endPage}
}

// Next advances to the next live record, returning ok=false at the end.
func (c *Cursor[T]) Next() (rid RID, oid int64, val T, ok bool) {
	var zero T
	for c.page < c.end {
		if !c.readPage {
			c.f.acct.Read(1)
			c.readPage = true
		}
		p := c.curPage()
		for c.slot < len(p.slots) {
			rec := &p.slots[c.slot]
			s := c.slot
			c.slot++
			if rec.live {
				return RID{Page: int32(c.page), Slot: int32(s)}, rec.oid, rec.val, true
			}
		}
		c.releasePage()
		c.page++
		c.slot = 0
		c.readPage = false
	}
	return RID{}, 0, zero, false
}

func (c *Cursor[T]) curPage() *page[T] {
	if !c.f.pooled() {
		return c.f.pages[c.page]
	}
	if !c.pinned {
		c.cur = c.f.pin(int32(c.page))
		c.pinned = true
	}
	return c.cur
}

func (c *Cursor[T]) releasePage() {
	if c.pinned {
		c.f.unpin(int32(c.page), false)
		c.pinned = false
		c.cur = nil
	}
}

// Close releases the cursor's pinned page, if any. It is safe to call
// repeatedly and on exhausted cursors; exhausted cursors release their
// last page automatically.
func (c *Cursor[T]) Close() { c.releasePage() }

// Len returns the number of live records.
func (f *File[T]) Len() int { return f.nLive }

// Pages returns the number of allocated pages.
func (f *File[T]) Pages() int { return f.numPages() }

// PageCap returns the per-page record capacity (B).
func (f *File[T]) PageCap() int { return f.pageCap }

// Accountant exposes the file's I/O accountant (shared with its indexes).
func (f *File[T]) Accountant() *pager.Accountant { return f.acct }
