// Package heap implements slotted-page heap files, the base storage of
// every relation: user tables, the de-normalized R_SummaryStorage side
// tables, and the raw-annotation store. Records are addressed by RID
// (page, slot); page accesses are charged to a pager.Accountant so that
// access-path costs are observable.
package heap

import (
	"fmt"

	"repro/internal/pager"
)

// RID is a record's physical address: the heap location returned by the
// engine-internal diskTupleLoc() function and stored in Summary-BTree
// backward pointers.
type RID struct {
	Page int32
	Slot int32
}

// Encode packs the RID into an int64 for storage as an index payload.
func (r RID) Encode() int64 { return int64(r.Page)<<32 | int64(uint32(r.Slot)) }

// DecodeRID unpacks an int64 produced by Encode.
func DecodeRID(v int64) RID {
	return RID{Page: int32(v >> 32), Slot: int32(uint32(v))}
}

// String renders "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// record is one slot: the record's OID, its payload, and a liveness flag.
type record[T any] struct {
	oid  int64
	val  T
	live bool
}

type page[T any] struct {
	slots []record[T]
	nLive int
}

// File is a heap file of records of type T. Records are identified
// logically by OID (assigned by the caller) and physically by RID. The
// zero File is not usable; construct with NewFile. File is not safe for
// concurrent mutation.
type File[T any] struct {
	acct    *pager.Accountant
	pageCap int
	pages   []*page[T]
	nLive   int
	// freePages lists pages with spare capacity, kept coarse: a page is
	// re-offered after deletions.
	freePages []int32
}

// NewFile builds a heap file whose pages hold pageCap records each
// (the paper's "disk page size in records" parameter B).
func NewFile[T any](acct *pager.Accountant, pageCap int) *File[T] {
	if pageCap <= 0 {
		pageCap = 64
	}
	return &File[T]{acct: acct, pageCap: pageCap}
}

// Insert appends a record and returns its RID. The page written is
// charged as one page write.
func (f *File[T]) Insert(oid int64, val T) RID {
	pid := f.pageWithSpace()
	p := f.pages[pid]
	p.slots = append(p.slots, record[T]{oid: oid, val: val, live: true})
	p.nLive++
	f.nLive++
	f.acct.Write(1)
	return RID{Page: pid, Slot: int32(len(p.slots) - 1)}
}

func (f *File[T]) pageWithSpace() int32 {
	for len(f.freePages) > 0 {
		pid := f.freePages[len(f.freePages)-1]
		if len(f.pages[pid].slots) < f.pageCap {
			return pid
		}
		f.freePages = f.freePages[:len(f.freePages)-1]
	}
	if n := len(f.pages); n > 0 && len(f.pages[n-1].slots) < f.pageCap {
		return int32(n - 1)
	}
	f.pages = append(f.pages, &page[T]{})
	return int32(len(f.pages) - 1)
}

// Get reads the record at rid, charging one page read.
func (f *File[T]) Get(rid RID) (oid int64, val T, ok bool) {
	var zero T
	if rid.Page < 0 || int(rid.Page) >= len(f.pages) {
		return 0, zero, false
	}
	p := f.pages[rid.Page]
	if rid.Slot < 0 || int(rid.Slot) >= len(p.slots) {
		return 0, zero, false
	}
	f.acct.Read(1)
	rec := p.slots[rid.Slot]
	if !rec.live {
		return 0, zero, false
	}
	return rec.oid, rec.val, true
}

// Update replaces the record at rid in place, charging one page read and
// one page write.
func (f *File[T]) Update(rid RID, val T) bool {
	if rid.Page < 0 || int(rid.Page) >= len(f.pages) {
		return false
	}
	p := f.pages[rid.Page]
	if rid.Slot < 0 || int(rid.Slot) >= len(p.slots) || !p.slots[rid.Slot].live {
		return false
	}
	f.acct.Read(1)
	f.acct.Write(1)
	p.slots[rid.Slot].val = val
	return true
}

// Delete tombstones the record at rid, charging one page read and write.
// The slot is not reused (RIDs stay stable) but the page is re-offered
// for inserts when slots were trimmed from its tail.
func (f *File[T]) Delete(rid RID) bool {
	if rid.Page < 0 || int(rid.Page) >= len(f.pages) {
		return false
	}
	p := f.pages[rid.Page]
	if rid.Slot < 0 || int(rid.Slot) >= len(p.slots) || !p.slots[rid.Slot].live {
		return false
	}
	f.acct.Read(1)
	f.acct.Write(1)
	var zero T
	p.slots[rid.Slot] = record[T]{val: zero}
	p.nLive--
	f.nLive--
	return true
}

// Scan iterates all live records in physical order, charging one page
// read per visited page. Iteration stops early when fn returns false.
func (f *File[T]) Scan(fn func(rid RID, oid int64, val T) bool) {
	for pi, p := range f.pages {
		f.acct.Read(1)
		for si := range p.slots {
			rec := &p.slots[si]
			if !rec.live {
				continue
			}
			if !fn(RID{Page: int32(pi), Slot: int32(si)}, rec.oid, rec.val) {
				return
			}
		}
	}
}

// Cursor is a pull-style iterator over a file's live records, charging
// one page read per visited page. Mutating the file invalidates open
// cursors. Reads are pure, so any number of cursors may run
// concurrently as long as the file is not mutated.
type Cursor[T any] struct {
	f        *File[T]
	page     int
	end      int // exclusive page bound
	slot     int
	readPage bool
}

// Cursor returns a cursor positioned before the first record.
func (f *File[T]) Cursor() *Cursor[T] { return &Cursor[T]{f: f, end: len(f.pages)} }

// RangeCursor returns a cursor over the half-open page range
// [startPage, endPage), clamped to the file. Consecutive ranges
// produced by splitting [0, Pages()) partition the file: every live
// record is visited by exactly one cursor, in the same global order a
// full Cursor would use — the basis of the executor's parallel scan.
func (f *File[T]) RangeCursor(startPage, endPage int) *Cursor[T] {
	if startPage < 0 {
		startPage = 0
	}
	if endPage > len(f.pages) {
		endPage = len(f.pages)
	}
	return &Cursor[T]{f: f, page: startPage, end: endPage}
}

// Next advances to the next live record, returning ok=false at the end.
func (c *Cursor[T]) Next() (rid RID, oid int64, val T, ok bool) {
	var zero T
	for c.page < c.end {
		p := c.f.pages[c.page]
		if !c.readPage {
			c.f.acct.Read(1)
			c.readPage = true
		}
		for c.slot < len(p.slots) {
			rec := &p.slots[c.slot]
			s := c.slot
			c.slot++
			if rec.live {
				return RID{Page: int32(c.page), Slot: int32(s)}, rec.oid, rec.val, true
			}
		}
		c.page++
		c.slot = 0
		c.readPage = false
	}
	return RID{}, 0, zero, false
}

// Len returns the number of live records.
func (f *File[T]) Len() int { return f.nLive }

// Pages returns the number of allocated pages.
func (f *File[T]) Pages() int { return len(f.pages) }

// PageCap returns the per-page record capacity (B).
func (f *File[T]) PageCap() int { return f.pageCap }

// Accountant exposes the file's I/O accountant (shared with its indexes).
func (f *File[T]) Accountant() *pager.Accountant { return f.acct }
