// Package heap implements slotted-page heap files, the base storage of
// every relation: user tables, the de-normalized R_SummaryStorage side
// tables, and the raw-annotation store. Records are addressed by RID
// (page, slot); page accesses are charged to a pager.Accountant so that
// access-path costs are observable.
//
// When the accountant has a buffer pool attached, pages live in pool
// frames instead of the file struct: every access pins the frame for the
// duration of the touch (cursors keep their current page pinned between
// Next calls and release it on advance or Close), mutations mark the
// frame dirty, and evicted pages round-trip through the pool's backing
// store. Without a pool the file keeps its pages resident directly and
// behaves exactly as before — only logical I/O is charged either way, at
// the same call sites, so access-path counts are identical in both modes.
//
// When the accountant additionally carries an MVCC epoch clock, the file
// versions its pages for snapshot reads: every page carries the epoch
// stamp of the mutation that produced it, the writer clones a page
// copy-on-write before the first mutation of a new epoch (pushing the
// previous version onto a per-page overlay chain), and AsOf returns a
// read-only view that resolves each page to the version visible at its
// snapshot epoch — without taking the writer's lock. Version chains and
// the page-count metadata chain are pruned as the clock's minimum pinned
// epoch advances. Without a clock, behavior is byte-identical to the
// unversioned file.
package heap

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mvcc"
	"repro/internal/pager"
)

// RID is a record's physical address: the heap location returned by the
// engine-internal diskTupleLoc() function and stored in Summary-BTree
// backward pointers.
type RID struct {
	Page int32
	Slot int32
}

// Encode packs the RID into an int64 for storage as an index payload.
func (r RID) Encode() int64 { return int64(r.Page)<<32 | int64(uint32(r.Slot)) }

// DecodeRID unpacks an int64 produced by Encode.
func DecodeRID(v int64) RID {
	return RID{Page: int32(v >> 32), Slot: int32(uint32(v))}
}

// String renders "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// record is one slot: the record's OID, its payload, and a liveness flag.
type record[T any] struct {
	oid  int64
	val  T
	live bool
}

// page is one slotted page. stamp is the epoch of the mutation that
// produced this version of the page (zero when unversioned); it is
// written before the page becomes reachable and never rewritten — a
// mutation in a later epoch clones the page instead.
type page[T any] struct {
	slots []record[T]
	nLive int
	stamp uint64
}

// pageWire is the serialized form of a page. Only live slots carry a
// value: gob cannot encode nil pointers, and tombstoned slots of pointer
// payload types hold exactly that, so dead slots are reconstructed as
// zero values from the liveness bitmap on decode.
type pageWire[T any] struct {
	OIDs  []int64
	Live  []bool
	Vals  []T // live slots only, in slot order
	Stamp uint64
}

// pageCodec serializes heap pages for buffer-pool write-back.
type pageCodec[T any] struct{}

func (pageCodec[T]) EncodePage(v any) ([]byte, error) {
	p := v.(*page[T])
	w := pageWire[T]{
		OIDs:  make([]int64, len(p.slots)),
		Live:  make([]bool, len(p.slots)),
		Stamp: p.stamp,
	}
	for i := range p.slots {
		w.OIDs[i] = p.slots[i].oid
		w.Live[i] = p.slots[i].live
		if p.slots[i].live {
			w.Vals = append(w.Vals, p.slots[i].val)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (pageCodec[T]) DecodePage(data []byte) (any, error) {
	var w pageWire[T]
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	// Structural validation: a torn or bit-flipped page image that still
	// gob-decodes must not be installed silently — the inconsistency
	// would otherwise surface later as a wrong answer instead of an
	// integrity error here.
	if len(w.Live) != len(w.OIDs) {
		return nil, fmt.Errorf("heap: corrupt page image: %d oids but %d liveness flags", len(w.OIDs), len(w.Live))
	}
	live := 0
	for _, l := range w.Live {
		if l {
			live++
		}
	}
	if live != len(w.Vals) {
		return nil, fmt.Errorf("heap: corrupt page image: %d live slots but %d values", live, len(w.Vals))
	}
	p := &page[T]{slots: make([]record[T], len(w.OIDs)), stamp: w.Stamp}
	vi := 0
	for i := range w.OIDs {
		p.slots[i].oid = w.OIDs[i]
		if w.Live[i] {
			p.slots[i].live = true
			p.slots[i].val = w.Vals[vi]
			vi++
			p.nLive++
		}
	}
	return p, nil
}

// pageVer is one superseded page version: p was the page's current
// version for epochs in [p.stamp, until).
type pageVer[T any] struct {
	until uint64
	p     *page[T]
}

// fileMeta is the file's per-epoch shape: the page count and live-record
// count as of the mutation stamped stamp. The chain (prev) lets a
// snapshot view recover the bounds it must scan within; it is pruned as
// the minimum pinned epoch advances. Nodes are immutable except for the
// atomic prev link, which pruning cuts.
type fileMeta struct {
	stamp    uint64
	numPages int
	nLive    int
	prev     atomic.Pointer[fileMeta]
}

// verState is the version store shared between a writer file and all of
// its snapshot views: superseded page versions, the resident pages of an
// unpooled file (readers access them without the writer's lock, so they
// live behind verState's mutex rather than in the File), and the
// metadata chain.
type verState[T any] struct {
	mu      sync.RWMutex
	overlay map[int32][]pageVer[T] // superseded versions, newest last
	pages   []*page[T]             // unpooled resident pages (nil when pooled)
	meta    atomic.Pointer[fileMeta]
}

// File is a heap file of records of type T. Records are identified
// logically by OID (assigned by the caller) and physically by RID. The
// zero File is not usable; construct with NewFile. File is not safe for
// concurrent mutation; with a clock attached, any number of AsOf views
// may read concurrently with the (single) mutator.
type File[T any] struct {
	acct    *pager.Accountant
	pageCap int

	// pool/space route page access through buffer-pool frames when the
	// accountant has a pool attached; used tracks each page's slot count
	// so capacity checks never need to pin a frame. Without a pool,
	// pages holds the file's pages resident and used is unused (when a
	// clock is attached, resident pages move into v.pages instead so
	// lock-free readers can reach them safely).
	pool  *pager.BufferPool
	space int32
	used  []int32
	pages []*page[T]

	// clock/v enable MVCC page versioning; view/snap mark a read-only
	// snapshot view produced by AsOf.
	clock *mvcc.Clock
	v     *verState[T]
	view  bool
	snap  uint64

	nLive int
	// freePages lists pages with spare capacity: a page is re-offered
	// after a delete trims tombstoned slots from its tail, and popped
	// once it fills back up. freeSet dedups offers.
	freePages []int32
	freeSet   map[int32]bool
}

// NewFile builds a heap file whose pages hold pageCap records each
// (the paper's "disk page size in records" parameter B). If acct has a
// buffer pool attached, the file registers its own page space with it;
// if acct carries an MVCC clock, the file versions its pages for
// snapshot reads and registers a version pruner with the clock.
func NewFile[T any](acct *pager.Accountant, pageCap int) *File[T] {
	if pageCap <= 0 {
		pageCap = 64
	}
	f := &File[T]{acct: acct, pageCap: pageCap}
	if pool := acct.Pool(); pool != nil {
		f.pool = pool
		f.space = pool.NewSpace(pageCodec[T]{})
	}
	if c := acct.Clock(); c != nil {
		f.clock = c
		f.v = &verState[T]{overlay: make(map[int32][]pageVer[T])}
		f.v.meta.Store(&fileMeta{stamp: c.Stamp()})
		c.AddPruner(f.pruneVersions)
	}
	return f
}

func (f *File[T]) pooled() bool    { return f.pool != nil }
func (f *File[T]) versioned() bool { return f.v != nil }

// AsOf returns a read-only view of the file frozen at epoch snap. The
// view shares the file's version store and resolves every page to the
// version visible at snap; it takes no lock against the writer. The
// file must have been built against an accountant with a clock, and the
// caller must hold a clock pin on snap for the view's lifetime.
func (f *File[T]) AsOf(snap uint64) *File[T] {
	g := *f
	g.view = true
	g.snap = snap
	return &g
}

// pin returns pid's page, pinned in its frame; callers must unpin.
func (f *File[T]) pin(pid int32) *page[T] {
	return f.pool.Get(f.space, int64(pid)).(*page[T])
}

func (f *File[T]) unpin(pid int32, dirty bool) {
	f.pool.Unpin(f.space, int64(pid), dirty)
}

// stampNew returns the epoch stamp for a page the writer creates now.
func (f *File[T]) stampNew() uint64 {
	if f.versioned() {
		return f.clock.Stamp()
	}
	return 0
}

func (f *File[T]) numPages() int {
	if f.pooled() {
		return len(f.used)
	}
	if f.versioned() {
		f.v.mu.RLock()
		n := len(f.v.pages)
		f.v.mu.RUnlock()
		return n
	}
	return len(f.pages)
}

// pageBound returns the exclusive page-number bound for reads: the
// view's frozen page count, or the live count for the writer.
func (f *File[T]) pageBound() int {
	if f.view {
		return f.viewMeta().numPages
	}
	return f.numPages()
}

// slotsOn returns pid's slot count without touching the page itself
// (pooled mode) — writer-side only; views bound slots by the resolved
// version's own length.
func (f *File[T]) slotsOn(pid int32) int {
	if f.pooled() {
		return int(f.used[pid])
	}
	return len(f.residentPage(pid).slots)
}

// residentPage returns pid's current page in unpooled mode.
func (f *File[T]) residentPage(pid int32) *page[T] {
	if f.versioned() {
		f.v.mu.RLock()
		p := f.v.pages[pid]
		f.v.mu.RUnlock()
		return p
	}
	return f.pages[pid]
}

// setMeta publishes the writer's current page/record counts into the
// metadata chain at the in-progress epoch's stamp; consecutive updates
// within one epoch replace the head in place.
func (f *File[T]) setMeta() {
	if !f.versioned() {
		return
	}
	st := f.clock.Stamp()
	head := f.v.meta.Load()
	m := &fileMeta{stamp: st, numPages: f.numPages(), nLive: f.nLive}
	if head != nil {
		if head.stamp == st {
			m.prev.Store(head.prev.Load())
		} else {
			m.prev.Store(head)
		}
	}
	f.v.meta.Store(m)
}

// viewMeta resolves the metadata visible at the view's snapshot.
func (f *File[T]) viewMeta() *fileMeta {
	for m := f.v.meta.Load(); m != nil; m = m.prev.Load() {
		if m.stamp <= f.snap {
			return m
		}
	}
	return &fileMeta{} // before the file's first epoch: empty
}

// writable returns pid's current page ready for in-place mutation,
// cloning it copy-on-write first when its current version belongs to an
// earlier epoch that snapshot readers may still resolve. In pooled mode
// the returned page is pinned; the caller unpins when done.
func (f *File[T]) writable(pid int32) *page[T] {
	if f.pooled() {
		p := f.pin(pid)
		if f.versioned() {
			if st := f.clock.Stamp(); p.stamp != st {
				cl := f.clonePage(p, st)
				// Publish the superseded version before swapping the frame
				// value, so a reader that sees the clone finds the old
				// version already on the overlay.
				f.v.mu.Lock()
				f.v.overlay[pid] = append(f.v.overlay[pid], pageVer[T]{until: st, p: p})
				f.v.mu.Unlock()
				f.pool.SetValue(f.space, int64(pid), cl)
				return cl
			}
		}
		return p
	}
	if f.versioned() {
		p := f.residentPage(pid)
		if st := f.clock.Stamp(); p.stamp != st {
			cl := f.clonePage(p, st)
			f.v.mu.Lock()
			f.v.overlay[pid] = append(f.v.overlay[pid], pageVer[T]{until: st, p: p})
			f.v.pages[pid] = cl
			f.v.mu.Unlock()
			return cl
		}
		return p
	}
	return f.pages[pid]
}

func (f *File[T]) clonePage(p *page[T], st uint64) *page[T] {
	return &page[T]{slots: append([]record[T](nil), p.slots...), nLive: p.nLive, stamp: st}
}

// viewPage resolves pid's version visible at the view's snapshot. The
// current version comes back pinned in pooled mode (pinned=true; the
// caller must unpin); superseded versions are immutable plain objects
// and need no pin. Returns nil for a page with no version at the
// snapshot (defensive; viewMeta bounds should exclude it).
func (f *File[T]) viewPage(pid int32) (p *page[T], pinned bool) {
	if f.pooled() {
		p = f.pin(pid)
		if p.stamp <= f.snap {
			return p, true
		}
		f.unpin(pid, false)
	} else {
		f.v.mu.RLock()
		p = f.v.pages[pid]
		f.v.mu.RUnlock()
		if p.stamp <= f.snap {
			return p, false
		}
	}
	return f.overlayPage(pid), false
}

// overlayPage finds the newest superseded version of pid visible at the
// view's snapshot.
func (f *File[T]) overlayPage(pid int32) *page[T] {
	f.v.mu.RLock()
	defer f.v.mu.RUnlock()
	vs := f.v.overlay[pid]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].p.stamp <= f.snap {
			return vs[i].p
		}
	}
	return nil
}

// fetchPage returns pid's page for reading — the snapshot-resolved
// version on a view, the current version otherwise. pinned reports
// whether the caller must unpin it.
func (f *File[T]) fetchPage(pid int32) (p *page[T], pinned bool) {
	if f.view {
		return f.viewPage(pid)
	}
	if f.pooled() {
		return f.pin(pid), true
	}
	return f.residentPage(pid), false
}

// pruneVersions discards page versions and metadata no pinned epoch can
// still resolve (every version with until <= min, every meta node older
// than the newest one at or below min). Registered with the clock;
// min only advances, but invocations may arrive out of order — removal
// by threshold is monotone-safe either way.
func (f *File[T]) pruneVersions(min uint64) {
	for m := f.v.meta.Load(); m != nil; m = m.prev.Load() {
		if m.stamp <= min {
			m.prev.Store(nil)
			break
		}
	}
	f.v.mu.Lock()
	for pid, vs := range f.v.overlay {
		i := 0
		for i < len(vs) && vs[i].until <= min {
			i++
		}
		if i == len(vs) {
			delete(f.v.overlay, pid)
		} else if i > 0 {
			f.v.overlay[pid] = vs[i:]
		}
	}
	f.v.mu.Unlock()
}

// Insert appends a record and returns its RID. The page written is
// charged as one page write.
func (f *File[T]) Insert(oid int64, val T) RID {
	pid, fresh := f.pageWithSpace()
	rec := record[T]{oid: oid, val: val, live: true}
	var slot int32
	if f.pooled() {
		var p *page[T]
		if fresh {
			p = &page[T]{stamp: f.stampNew()}
			f.pool.NewPage(f.space, int64(pid), p)
		} else {
			p = f.writable(pid)
		}
		p.slots = append(p.slots, rec)
		p.nLive++
		slot = int32(len(p.slots) - 1)
		f.used[pid] = int32(len(p.slots))
		f.unpin(pid, true)
	} else {
		p := f.writable(pid)
		p.slots = append(p.slots, rec)
		p.nLive++
		slot = int32(len(p.slots) - 1)
	}
	f.nLive++
	f.acct.Write(1)
	f.setMeta()
	return RID{Page: pid, Slot: slot}
}

// pageWithSpace picks the page the next insert lands on: a re-offered
// page with spare capacity, then the last page, then a fresh page
// (fresh=true means the caller must materialize it).
func (f *File[T]) pageWithSpace() (pid int32, fresh bool) {
	for len(f.freePages) > 0 {
		pid := f.freePages[len(f.freePages)-1]
		if f.slotsOn(pid) < f.pageCap {
			return pid, false
		}
		f.freePages = f.freePages[:len(f.freePages)-1]
		delete(f.freeSet, pid)
	}
	if n := f.numPages(); n > 0 && f.slotsOn(int32(n-1)) < f.pageCap {
		return int32(n - 1), false
	}
	if f.pooled() {
		f.used = append(f.used, 0)
		return int32(len(f.used) - 1), true
	}
	if f.versioned() {
		np := &page[T]{stamp: f.stampNew()}
		f.v.mu.Lock()
		f.v.pages = append(f.v.pages, np)
		n := len(f.v.pages)
		f.v.mu.Unlock()
		return int32(n - 1), false
	}
	f.pages = append(f.pages, &page[T]{})
	return int32(len(f.pages) - 1), false
}

// Get reads the record at rid, charging one page read.
func (f *File[T]) Get(rid RID) (oid int64, val T, ok bool) {
	var zero T
	if f.view {
		return f.getView(rid)
	}
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return 0, zero, false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return 0, zero, false
	}
	f.acct.Read(1)
	var rec record[T]
	if f.pooled() {
		p := f.pin(rid.Page)
		rec = p.slots[rid.Slot]
		f.unpin(rid.Page, false)
	} else {
		rec = f.residentPage(rid.Page).slots[rid.Slot]
	}
	if !rec.live {
		return 0, zero, false
	}
	return rec.oid, rec.val, true
}

// getView is Get against a snapshot view: page bounds come from the
// frozen metadata and the slot bound from the resolved version itself.
// (A slot-out-of-range probe touches the pool's hit/miss counters here
// where the writer path's capacity table avoids it — invalid-RID probes
// are not on any measured path.)
func (f *File[T]) getView(rid RID) (oid int64, val T, ok bool) {
	var zero T
	if rid.Page < 0 || int(rid.Page) >= f.viewMeta().numPages {
		return 0, zero, false
	}
	p, pinned := f.viewPage(rid.Page)
	if p == nil || rid.Slot < 0 || int(rid.Slot) >= len(p.slots) {
		if pinned {
			f.unpin(rid.Page, false)
		}
		return 0, zero, false
	}
	f.acct.Read(1)
	rec := p.slots[rid.Slot]
	if pinned {
		f.unpin(rid.Page, false)
	}
	if !rec.live {
		return 0, zero, false
	}
	return rec.oid, rec.val, true
}

// Update replaces the record at rid in place, charging one page read and
// one page write.
func (f *File[T]) Update(rid RID, val T) bool {
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return false
	}
	p := f.writable(rid.Page)
	if !p.slots[rid.Slot].live {
		if f.pooled() {
			f.unpin(rid.Page, false)
		}
		return false
	}
	f.acct.Read(1)
	f.acct.Write(1)
	p.slots[rid.Slot].val = val
	if f.pooled() {
		f.unpin(rid.Page, true)
	}
	return true
}

// Delete tombstones the record at rid, charging one page read and write.
// Live RIDs stay stable, but tombstoned slots at the page's tail are
// trimmed so later inserts can reuse them, and the page is re-offered to
// the free list when it has spare capacity — under insert/delete churn
// the file's page count stays bounded instead of growing monotonically.
func (f *File[T]) Delete(rid RID) bool {
	if rid.Page < 0 || int(rid.Page) >= f.numPages() {
		return false
	}
	if rid.Slot < 0 || int(rid.Slot) >= f.slotsOn(rid.Page) {
		return false
	}
	p := f.writable(rid.Page)
	if !p.slots[rid.Slot].live {
		if f.pooled() {
			f.unpin(rid.Page, false)
		}
		return false
	}
	f.acct.Read(1)
	f.acct.Write(1)
	f.tombstone(p, rid.Slot)
	if f.pooled() {
		f.used[rid.Page] = int32(len(p.slots))
		f.unpin(rid.Page, true)
	}
	f.offerFree(rid.Page)
	f.setMeta()
	return true
}

// tombstone kills one slot and trims any dead run off the page's tail so
// those slot numbers become reusable.
func (f *File[T]) tombstone(p *page[T], slot int32) {
	p.slots[slot] = record[T]{}
	p.nLive--
	f.nLive--
	n := len(p.slots)
	for n > 0 && !p.slots[n-1].live {
		n--
	}
	for i := n; i < len(p.slots); i++ {
		p.slots[i] = record[T]{}
	}
	p.slots = p.slots[:n]
}

// offerFree re-offers pid to the insert path when it has spare capacity
// and is not already on the free list.
func (f *File[T]) offerFree(pid int32) {
	if f.slotsOn(pid) >= f.pageCap || f.freeSet[pid] {
		return
	}
	if f.freeSet == nil {
		f.freeSet = make(map[int32]bool)
	}
	f.freeSet[pid] = true
	f.freePages = append(f.freePages, pid)
}

// Scan iterates all live records in physical order, charging one page
// read per visited page. Iteration stops early when fn returns false.
func (f *File[T]) Scan(fn func(rid RID, oid int64, val T) bool) {
	bound := f.pageBound()
	for pi := 0; pi < bound; pi++ {
		f.acct.Read(1)
		if !f.scanPage(int32(pi), fn) {
			return
		}
	}
}

// scanPage visits pid's live slots with the page pinned for the duration.
func (f *File[T]) scanPage(pid int32, fn func(RID, int64, T) bool) bool {
	p, pinned := f.fetchPage(pid)
	if pinned {
		defer f.unpin(pid, false)
	}
	if p == nil {
		return true
	}
	for si := range p.slots {
		rec := &p.slots[si]
		if !rec.live {
			continue
		}
		if !fn(RID{Page: pid, Slot: int32(si)}, rec.oid, rec.val) {
			return false
		}
	}
	return true
}

// FetchMany visits the records at the given RIDs, grouping consecutive
// same-page RIDs so each group costs one page read and one frame pin —
// the batched (bitmap-style) dereference path for index scans. Callers
// wanting minimal I/O sort the RIDs into page order first; FetchMany
// itself preserves the given order, so it also serves order-preserving
// fetches (each page run then has length 1 and the cost matches per-RID
// Get exactly). Out-of-range and tombstoned RIDs are skipped without
// calling fn; returning false from fn stops the fetch. The number of
// page reads charged (= pages pinned) is returned.
func (f *File[T]) FetchMany(rids []RID, fn func(rid RID, oid int64, val T) bool) int {
	reads := 0
	bound := f.pageBound()
	for i := 0; i < len(rids); {
		pid := rids[i].Page
		j := i
		for j < len(rids) && rids[j].Page == pid {
			j++
		}
		if pid < 0 || int(pid) >= bound {
			i = j
			continue
		}
		f.acct.Read(1)
		reads++
		p, pinned := f.fetchPage(pid)
		stop := false
		if p != nil {
			for _, rid := range rids[i:j] {
				if rid.Slot < 0 || int(rid.Slot) >= len(p.slots) {
					continue
				}
				rec := &p.slots[rid.Slot]
				if !rec.live {
					continue
				}
				if !fn(rid, rec.oid, rec.val) {
					stop = true
					break
				}
			}
		}
		if pinned {
			f.unpin(pid, false)
		}
		if stop {
			break
		}
		i = j
	}
	return reads
}

// Prefetch hints the buffer pool to warm the given pages ahead of a
// page-ordered fetch. No logical reads are charged (the fetch itself
// charges them on arrival); without a pool every page is already
// resident and this is a no-op.
func (f *File[T]) Prefetch(pids []int32) {
	if !f.pooled() {
		return
	}
	bound := f.pageBound()
	pages := make([]int64, 0, len(pids))
	for _, pid := range pids {
		if pid >= 0 && int(pid) < bound {
			pages = append(pages, int64(pid))
		}
	}
	f.pool.Prefetch(f.space, pages)
}

// Release drops the file's pages from the buffer pool (no-op without a
// pool). The file must not be used afterwards. With a clock attached
// the drop is deferred until no pinned epoch can still resolve the
// file's pages through a snapshot view.
func (f *File[T]) Release() {
	if !f.pooled() {
		return
	}
	if f.versioned() {
		pool, space := f.pool, f.space
		f.clock.Retire(func() { pool.DropSpace(space) })
		return
	}
	f.pool.DropSpace(f.space)
}

// Cursor is a pull-style iterator over a file's live records, charging
// one page read per visited page. Mutating the file invalidates open
// cursors (snapshot views from AsOf are immune: their cursors resolve
// page versions frozen at the view's epoch). Reads are pure, so any
// number of cursors may run concurrently as long as the file is not
// mutated — with a buffer pool each cursor pins its current page
// independently, so callers must Close cursors they abandon before
// exhaustion.
type Cursor[T any] struct {
	f        *File[T]
	page     int
	end      int // exclusive page bound
	slot     int
	readPage bool
	cur      *page[T] // current page, pinned while pinned=true
	pinned   bool
}

// Cursor returns a cursor positioned before the first record.
func (f *File[T]) Cursor() *Cursor[T] { return &Cursor[T]{f: f, end: f.pageBound()} }

// RangeCursor returns a cursor over the half-open page range
// [startPage, endPage), clamped to the file. Consecutive ranges
// produced by splitting [0, Pages()) partition the file: every live
// record is visited by exactly one cursor, in the same global order a
// full Cursor would use — the basis of the executor's parallel scan.
func (f *File[T]) RangeCursor(startPage, endPage int) *Cursor[T] {
	if startPage < 0 {
		startPage = 0
	}
	if bound := f.pageBound(); endPage > bound {
		endPage = bound
	}
	return &Cursor[T]{f: f, page: startPage, end: endPage}
}

// Next advances to the next live record, returning ok=false at the end.
func (c *Cursor[T]) Next() (rid RID, oid int64, val T, ok bool) {
	var zero T
	for c.page < c.end {
		if !c.readPage {
			c.f.acct.Read(1)
			c.readPage = true
		}
		p := c.curPage()
		for p != nil && c.slot < len(p.slots) {
			rec := &p.slots[c.slot]
			s := c.slot
			c.slot++
			if rec.live {
				return RID{Page: int32(c.page), Slot: int32(s)}, rec.oid, rec.val, true
			}
		}
		c.releasePage()
		c.page++
		c.slot = 0
		c.readPage = false
	}
	return RID{}, 0, zero, false
}

func (c *Cursor[T]) curPage() *page[T] {
	if c.f.view {
		if c.cur == nil && !c.pinned {
			c.cur, c.pinned = c.f.viewPage(int32(c.page))
		}
		return c.cur
	}
	if !c.f.pooled() {
		return c.f.residentPage(int32(c.page))
	}
	if !c.pinned {
		c.cur = c.f.pin(int32(c.page))
		c.pinned = true
	}
	return c.cur
}

func (c *Cursor[T]) releasePage() {
	if c.pinned {
		c.f.unpin(int32(c.page), false)
		c.pinned = false
	}
	c.cur = nil
}

// Close releases the cursor's pinned page, if any. It is safe to call
// repeatedly and on exhausted cursors; exhausted cursors release their
// last page automatically.
func (c *Cursor[T]) Close() { c.releasePage() }

// Len returns the number of live records.
func (f *File[T]) Len() int {
	if f.view {
		return f.viewMeta().nLive
	}
	return f.nLive
}

// Pages returns the number of allocated pages.
func (f *File[T]) Pages() int { return f.pageBound() }

// PageCap returns the per-page record capacity (B).
func (f *File[T]) PageCap() int { return f.pageCap }

// Accountant exposes the file's I/O accountant (shared with its indexes).
func (f *File[T]) Accountant() *pager.Accountant { return f.acct }
