// Benchmarks regenerating the measured operation behind every table and
// figure of the paper's evaluation (Section 6), one benchmark per
// figure, with sub-benchmarks for the figure's series. The full
// paper-shaped sweeps (x-axis grids, ratio columns, notes) are produced
// by `go run ./cmd/benchreport`; these testing.B benchmarks isolate each
// figure's core operation for profiling and regression tracking.
package insightnotes_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// fixture is the shared benchmark dataset: 200 birds × ~20 annotations
// (the paper's mid-grid shape at 1/225 scale), with both index schemes,
// a synonyms table, a V2 revision, and a T replica.
type fixture struct {
	ds *workload.Dataset
	db *engine.DB
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func sharedFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		ds, err := workload.Build(workload.Config{
			Seed: 1, Birds: 200, AvgAnnotationsPerBird: 20,
			SynonymsPerBird: 5, AnnotateSynonymsFraction: 0.15,
			LongAnnotationFraction: 0.01,
		})
		if err != nil {
			fixErr = err
			return
		}
		db := ds.DB
		for _, step := range []func() error{
			func() error { return db.CreateSummaryIndex("Birds", "ClassBird1") },
			func() error { return db.CreateBaselineIndex("Birds", "ClassBird1") },
			func() error { return db.CreateDataIndex("Synonyms", "bird_id") },
			func() error { return db.CreateDataIndex("Birds", "id") },
			func() error {
				return ds.BuildVersionTable("BirdsV2", map[int]bool{3: true, 50: true, 101: true})
			},
			func() error { return db.CreateDataIndex("BirdsV2", "id") },
			func() error {
				if _, err := db.CreateTable("BirdsT", workload.BirdsSchema()); err != nil {
					return err
				}
				birds, _ := db.Table("Birds")
				birds.Scan(func(_ heap.RID, tu *model.Tuple) bool {
					db.Insert("BirdsT", tu.Values...)
					return true
				})
				return db.CreateDataIndex("BirdsT", "id")
			},
		} {
			if err := step(); err != nil {
				fixErr = err
				return
			}
		}
		fix = &fixture{ds: ds, db: db}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

func benchQuery(b *testing.B, db *engine.DB, q string, opts *optimizer.Options) {
	b.Helper()
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// diseaseEqQuery builds the Figure 10/13 SP query at roughly the given
// equality selectivity.
func diseaseEqQuery(f *fixture, sel float64, suffix string) string {
	birds, _ := f.db.Table("Birds")
	c := pickEq(birds, "ClassBird1", "Disease", sel)
	return fmt.Sprintf(`SELECT * FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = %d%s`, c, suffix)
}

func pickEq(t *catalog.Table, instance, label string, target float64) int {
	ls := t.Stats(instance).Label(label)
	best, bestDiff := 0, 2.0
	for v, cnt := range ls.Values() {
		d := float64(cnt)/float64(ls.N()) - target
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = v, d
		}
	}
	return best
}

// BenchmarkFig07_StorageOverhead reports the storage footprints of both
// indexing schemes as custom metrics (bytes, not time).
func BenchmarkFig07_StorageOverhead(b *testing.B) {
	f := sharedFixture(b)
	birds, _ := f.db.Table("Birds")
	var objects, baseline, sbtree int
	for i := 0; i < b.N; i++ {
		objects = 0
		birds.SummaryStorage.Scan(func(_ heap.RID, _ int64, set model.SummarySet) bool {
			objects += catalog.EstimateSetSize(set)
			return true
		})
		baseline = f.db.BaselineIndex("Birds", "ClassBird1").SizeBytes()
		sbtree = f.db.SummaryIndex("Birds", "ClassBird1").SizeBytes()
	}
	b.ReportMetric(float64(objects), "objects-bytes")
	b.ReportMetric(float64(baseline), "baseline-bytes")
	b.ReportMetric(float64(sbtree), "sbtree-bytes")
	if baseline <= sbtree {
		b.Fatalf("shape violation: baseline %d <= sbtree %d", baseline, sbtree)
	}
}

// BenchmarkFig08_BulkCreation measures bulk index creation.
func BenchmarkFig08_BulkCreation(b *testing.B) {
	f := sharedFixture(b)
	b.Run("SummaryBTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.db.DropSummaryIndex("Birds", "ClassBird1")
			if err := f.db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.db.DropBaselineIndex("Birds", "ClassBird1")
			if err := f.db.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig09_IncrementalIndexing measures per-annotation insertion
// under the three maintenance configurations.
func BenchmarkFig09_IncrementalIndexing(b *testing.B) {
	build := func(b *testing.B) *workload.Dataset {
		ds, err := workload.Build(workload.Config{
			Seed: 5, Birds: 100, AvgAnnotationsPerBird: 10,
			SkipSynonyms: true, LongAnnotationFraction: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return ds
	}
	run := func(b *testing.B, ds *workload.Dataset) {
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ds.AddAnnotations(rng, rng.Intn(len(ds.Birds)), 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NoIndex", func(b *testing.B) {
		run(b, build(b))
	})
	b.Run("SummaryBTree", func(b *testing.B) {
		ds := build(b)
		if err := ds.DB.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			b.Fatal(err)
		}
		run(b, ds)
	})
	b.Run("Baseline", func(b *testing.B) {
		ds := build(b)
		if err := ds.DB.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
			b.Fatal(err)
		}
		run(b, ds)
	})
}

// BenchmarkFig10_SelectionClassifier measures the SP query with a ~1%
// classifier equality predicate under the three access paths.
func BenchmarkFig10_SelectionClassifier(b *testing.B) {
	f := sharedFixture(b)
	q := diseaseEqQuery(f, 0.01, "")
	b.Run("NoIndex", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{NoSummaryIndex: true})
	})
	b.Run("Baseline", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{UseBaseline: true})
	})
	b.Run("SummaryBTree", func(b *testing.B) {
		benchQuery(b, f.db, q, nil)
	})
}

// BenchmarkFig11_TwoPredicates measures the classifier-range + snippet
// keyword-search query.
func BenchmarkFig11_TwoPredicates(b *testing.B) {
	f := sharedFixture(b)
	birds, _ := f.db.Table("Birds")
	lo := pickEq(birds, "ClassBird1", "Anatomy", 0.05)
	q := fmt.Sprintf(`SELECT * FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') >= %d
		AND r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') <= %d
		AND r.$.getSummaryObject('TextSummary1').containsUnion('stonewort')`, lo, lo+2)
	b.Run("NoIndex", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{NoSummaryIndex: true})
	})
	b.Run("Baseline", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{UseBaseline: true})
	})
	b.Run("SummaryBTree", func(b *testing.B) {
		benchQuery(b, f.db, q, nil)
	})
}

// BenchmarkFig12_DenormalizedPropagation compares propagation from the
// de-normalized storage against rebuilding from normalized rows.
func BenchmarkFig12_DenormalizedPropagation(b *testing.B) {
	f := sharedFixture(b)
	birds, _ := f.db.Table("Birds")
	lo := pickEq(birds, "ClassBird1", "Anatomy", 0.1)
	q := fmt.Sprintf(`SELECT * FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') >= %d
		AND r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') <= %d`, lo, lo+3)
	b.Run("BaselineRebuild", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{UseBaseline: true, BaselineReconstruct: true})
	})
	b.Run("SummaryBTreeDenormalized", func(b *testing.B) {
		benchQuery(b, f.db, q, nil)
	})
}

// BenchmarkFig13_BackwardPointers ablates backward vs conventional leaf
// pointers, with and without summary propagation.
func BenchmarkFig13_BackwardPointers(b *testing.B) {
	f := sharedFixture(b)
	withProp := diseaseEqQuery(f, 0.05, "")
	noProp := diseaseEqQuery(f, 0.05, " WITHOUT SUMMARIES")
	b.Run("Backward-Propagation", func(b *testing.B) {
		benchQuery(b, f.db, withProp, nil)
	})
	b.Run("Backward-NoPropagation", func(b *testing.B) {
		benchQuery(b, f.db, noProp, nil)
	})
	b.Run("Conventional-Propagation", func(b *testing.B) {
		benchQuery(b, f.db, withProp, &optimizer.Options{ConventionalPointers: true})
	})
	b.Run("Conventional-NoPropagation", func(b *testing.B) {
		benchQuery(b, f.db, noProp, &optimizer.Options{ConventionalPointers: true})
	})
}

// BenchmarkFig14_Rules2and5 runs Example 4's join+selection+sort query
// with the transformation rules disabled and enabled across the four
// join/sort implementation combinations.
func BenchmarkFig14_Rules2and5(b *testing.B) {
	f := sharedFixture(b)
	q := `SELECT r.id FROM Birds r, Synonyms s
		WHERE r.id = s.bird_id
		AND r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 7
		ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`
	for _, jc := range []struct{ join, sort string }{
		{"nl", "mem"}, {"nl", "disk"}, {"index", "mem"}, {"index", "disk"},
	} {
		b.Run(fmt.Sprintf("Disabled-%s-%s", jc.join, jc.sort), func(b *testing.B) {
			benchQuery(b, f.db, q, &optimizer.Options{
				DisableRules: true, ForceJoin: jc.join, ForceSort: jc.sort, SortRunLen: 256})
		})
		b.Run(fmt.Sprintf("Enabled-%s-%s", jc.join, jc.sort), func(b *testing.B) {
			benchQuery(b, f.db, q, &optimizer.Options{ForceJoin: jc.join})
		})
	}
}

// BenchmarkFig15_Rule11 measures the data/summary join-order switch.
func BenchmarkFig15_Rule11(b *testing.B) {
	f := sharedFixture(b)
	q := `SELECT r.id FROM Birds r, Synonyms s, BirdsT t
	      WHERE t.id = r.id
	      AND (r.$.getSummaryObject('TextSummary1').containsUnion('ringed')
	        OR s.$.getSummaryObject('TextSummary1').containsUnion('ringed'))`
	b.Run("Disabled", func(b *testing.B) {
		benchQuery(b, f.db, q, &optimizer.Options{DisableRules: true})
	})
	b.Run("Enabled", func(b *testing.B) {
		benchQuery(b, f.db, q, nil)
	})
}

// BenchmarkFig16_CaseStudy measures the three case-study queries the
// extended system answers automatically (Figures 2 and 16).
func BenchmarkFig16_CaseStudy(b *testing.B) {
	f := sharedFixture(b)
	b.Run("Q1-SummarySort", func(b *testing.B) {
		benchQuery(b, f.db, `SELECT id FROM Birds r
			ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC
			LIMIT 100`, nil)
	})
	b.Run("Q2-VersionDiffJoin", func(b *testing.B) {
		benchQuery(b, f.db, `SELECT v1.id FROM Birds v1, BirdsV2 v2
			WHERE v1.id = v2.id
			AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
			 <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`, nil)
	})
	b.Run("Q3-SummarySelection", func(b *testing.B) {
		benchQuery(b, f.db, diseaseEqQuery(f, 0.02, ""), nil)
	})
}

// BenchmarkTheorem_IndexOps isolates the Summary-BTree maintenance and
// probe operations whose complexity bounds Section 4.1.3 states.
func BenchmarkTheorem_IndexOps(b *testing.B) {
	build := func(n int) (*index.SummaryBTree, []heap.RID) {
		idx := index.NewSummaryBTree(nil, "C")
		rng := rand.New(rand.NewSource(3))
		rids := make([]heap.RID, n)
		for i := 0; i < n; i++ {
			rids[i] = heap.RID{Page: int32(i / 64), Slot: int32(i % 64)}
			obj := &model.SummaryObject{InstanceID: "C", TupleOID: int64(i), Type: model.SummaryClassifier,
				Reps: []model.Rep{
					{Label: "Disease", Count: rng.Intn(200)},
					{Label: "Anatomy", Count: rng.Intn(200)},
					{Label: "Behavior", Count: rng.Intn(200)},
					{Label: "Other", Count: rng.Intn(200)},
				}}
			idx.IndexObject(obj, rids[i])
		}
		return idx, rids
	}
	for _, n := range []int{1000, 10000, 100000} {
		idx, rids := build(n)
		b.Run(fmt.Sprintf("EqualitySearch/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Search("Disease", index.OpEq, i%200)
			}
		})
		b.Run(fmt.Sprintf("UpdateLabel/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				old := i % 200
				idx.UpdateLabel("Disease", old, old+1, rids[i%len(rids)])
				idx.UpdateLabel("Disease", old+1, old, rids[i%len(rids)])
			}
		})
	}
}

// BenchmarkAblation_JoinImplementations compares the three data-join
// implementations on the same Birds ⋈ Synonyms query — an ablation for
// the "more implementation choices" extension (the paper ships NL and
// index joins; hash join is this reproduction's addition).
func BenchmarkAblation_JoinImplementations(b *testing.B) {
	f := sharedFixture(b)
	q := `SELECT r.id FROM Birds r, Synonyms s WHERE r.id = s.bird_id AND r.id < 50`
	for _, impl := range []string{"nl", "hash", "index"} {
		b.Run(impl, func(b *testing.B) {
			benchQuery(b, f.db, q, &optimizer.Options{ForceJoin: impl})
		})
	}
}

// BenchmarkAblation_DemandDrivenPropagation measures what demand-driven
// summary attachment saves: the same index-answered query with the
// output propagating summaries vs not (DESIGN.md decision 3).
func BenchmarkAblation_DemandDrivenPropagation(b *testing.B) {
	f := sharedFixture(b)
	b.Run("WithSummaries", func(b *testing.B) {
		benchQuery(b, f.db, diseaseEqQuery(f, 0.05, ""), nil)
	})
	b.Run("WithoutSummaries", func(b *testing.B) {
		benchQuery(b, f.db, diseaseEqQuery(f, 0.05, " WITHOUT SUMMARIES"), nil)
	})
}

// allocFixture builds the warm single-table dataset for the
// vectorization allocation measurements: a plan cache so QueryCached
// skips parse/optimize, and no synonyms or long annotations so the
// scan-heavy query is the entire cost.
func allocFixture(tb testing.TB) *engine.DB {
	tb.Helper()
	ds, err := workload.Build(workload.Config{
		Seed: 1, Birds: 1000, AvgAnnotationsPerBird: 2,
		SkipSynonyms: true, LongAnnotationFraction: -1,
		PlanCacheSize: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return ds.DB
}

const allocQuery = `SELECT id, sci_name FROM Birds b WHERE b.id > 0 WITHOUT SUMMARIES`

// BenchmarkVectorizedScanAllocs reports the allocation profile of a
// warm scan->filter->project query in row mode vs batch mode (compare
// allocs/op between the two).
func BenchmarkVectorizedScanAllocs(b *testing.B) {
	db := allocFixture(b)
	run := func(size int) func(*testing.B) {
		opts := &optimizer.Options{MaxBatchSize: size}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryCached(allocQuery, nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("RowMode", run(1))
	b.Run("Batch1024", run(1024))
}

// TestVectorizedAllocBudget is the regression guard on the batch-mode
// allocation discipline: slab-carved rows and pooled batch containers
// must keep a warm vectorized scan under 1 allocation per output row,
// and strictly cheaper than the row-at-a-time execution of the same
// cached plan. A per-row allocation sneaking back into the batch path
// (row boxing, per-row alias maps, unpooled containers) trips this
// immediately.
func TestVectorizedAllocBudget(t *testing.T) {
	db := allocFixture(t)
	measure := func(size int) (allocsPerRow float64) {
		opts := &optimizer.Options{MaxBatchSize: size}
		res, err := db.QueryCached(allocQuery, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		rows := len(res.Rows)
		if rows != 1000 {
			t.Fatalf("fixture drift: %d rows, want 1000", rows)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := db.QueryCached(allocQuery, nil, opts); err != nil {
				t.Fatal(err)
			}
		})
		return allocs / float64(rows)
	}
	rowMode := measure(1)
	batch := measure(1024)
	if batch >= 1.0 {
		t.Errorf("batch mode allocates %.2f/row, budget is < 1", batch)
	}
	if batch >= rowMode {
		t.Errorf("batch mode (%.2f allocs/row) not cheaper than row mode (%.2f)", batch, rowMode)
	}
}

// BenchmarkReport_Quick regenerates the full figure set at the quick
// scale once per iteration — an end-to-end harness benchmark (run with
// -benchtime=1x; it is skipped in -short mode).
func BenchmarkReport_Quick(b *testing.B) {
	if testing.Short() {
		b.Skip("full report generation skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness(bench.Scale{
			Birds: 80, AnnGrid: []int{10, 25}, SynonymsPerBird: 5, Seed: 1,
		})
		if _, err := bench.AllFigures(h); err != nil {
			b.Fatal(err)
		}
	}
}
